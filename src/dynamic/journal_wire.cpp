#include "dynamic/journal_wire.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

namespace ssp {

namespace {

std::string describe(Index line_no, const std::string& what,
                     const std::string& text) {
  std::ostringstream os;
  os << "update journal, line " << line_no << ": " << what << " (line: \""
     << text << "\")";
  return os.str();
}

[[noreturn]] void wire_error(Index line_no, const std::string& what,
                             const std::string& text) {
  throw JournalParseError(line_no, what, text);
}

/// Strict non-negative integer vertex id: every character consumed, fits
/// Vertex.
Vertex parse_vertex(const std::string& tok, Index line_no,
                    const std::string& text) {
  if (tok.empty() || tok[0] == '-' || tok[0] == '+') {
    wire_error(line_no, "vertex id '" + tok + "' is not a non-negative integer",
               text);
  }
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(tok.c_str(), &end, 10);
  if (errno != 0 || end != tok.c_str() + tok.size()) {
    wire_error(line_no, "vertex id '" + tok + "' is not a non-negative integer",
               text);
  }
  if (value > std::numeric_limits<Vertex>::max()) {
    wire_error(line_no, "vertex id '" + tok + "' overflows", text);
  }
  return static_cast<Vertex>(value);
}

/// Strict positive finite weight: every character consumed.
double parse_weight(const std::string& tok, Index line_no,
                    const std::string& text) {
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(tok.c_str(), &end);
  if (tok.empty() || end != tok.c_str() + tok.size()) {
    wire_error(line_no, "weight '" + tok + "' is not a number", text);
  }
  if (!(value > 0.0) || !std::isfinite(value)) {
    wire_error(line_no, "weight '" + tok + "' must be positive and finite",
               text);
  }
  return value;
}

}  // namespace

JournalParseError::JournalParseError(Index line_no, const std::string& what,
                                     const std::string& text)
    : std::runtime_error(describe(line_no, what, text)), line_(line_no) {}

std::vector<std::string> tokenize_journal_line(const std::string& line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f';
  };
  while (i < line.size()) {
    while (i < line.size() && is_space(line[i])) ++i;
    if (i >= line.size()) break;
    if (line[i] == '%' || line[i] == '#') break;  // comment tail
    std::size_t j = i;
    while (j < line.size() && !is_space(line[j])) ++j;
    tokens.push_back(line.substr(i, j - i));
    i = j;
  }
  return tokens;
}

JournalLine parse_journal_line(const std::string& line, Index line_no) {
  const std::vector<std::string> tokens = tokenize_journal_line(line);
  JournalLine out;
  if (tokens.empty()) return out;  // kBlank

  const std::string& verb = tokens[0];
  if (verb == "commit") {
    if (tokens.size() != 1) {
      wire_error(line_no, "'commit' takes no arguments", line);
    }
    out.kind = JournalLine::Kind::kCommit;
    return out;
  }

  JournalOp op;
  std::size_t arity = 0;
  if (verb == "insert") {
    op.kind = JournalOp::Kind::kInsert;
    arity = 3;
  } else if (verb == "delete") {
    op.kind = JournalOp::Kind::kDelete;
    arity = 2;
  } else if (verb == "reweight") {
    op.kind = JournalOp::Kind::kReweight;
    arity = 3;
  } else {
    wire_error(line_no, "unknown operation '" + verb + "'", line);
  }
  if (tokens.size() != arity + 1) {
    std::ostringstream os;
    os << "'" << verb << "' expects " << arity << " arguments, got "
       << tokens.size() - 1;
    wire_error(line_no, os.str(), line);
  }
  op.u = parse_vertex(tokens[1], line_no, line);
  op.v = parse_vertex(tokens[2], line_no, line);
  if (arity == 3) op.weight = parse_weight(tokens[3], line_no, line);
  op.line = line_no;
  out.kind = JournalLine::Kind::kOp;
  out.op = op;
  return out;
}

std::string format_journal_weight(double w) {
  // Mirror parse_weight's domain exactly so parse(format(w)) == w holds for
  // every weight the formatter accepts and both sides reject the rest in
  // agreement. `!(w > 0.0)` (not `w <= 0.0`) catches NaN and — crucially —
  // negative zero, which "%.17g" would print as "-0": a token the parser
  // refuses, so emitting it would produce an unreadable journal line.
  // Subnormals (down to DBL_TRUE_MIN) are in-domain on both sides: strtod
  // sets ERANGE for them but still returns the value, and parse_weight
  // deliberately does not consult errno.
  if (!(w > 0.0) || !std::isfinite(w)) {
    std::ostringstream os;
    os << "journal weight " << w
       << " is not representable (must be positive and finite)";
    throw std::invalid_argument(os.str());
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", w);
  return buf;
}

std::string format_journal_op(const JournalOp& op) {
  std::ostringstream os;
  switch (op.kind) {
    case JournalOp::Kind::kInsert:
      os << "insert " << op.u << ' ' << op.v << ' '
         << format_journal_weight(op.weight);
      break;
    case JournalOp::Kind::kDelete:
      os << "delete " << op.u << ' ' << op.v;
      break;
    case JournalOp::Kind::kReweight:
      os << "reweight " << op.u << ' ' << op.v << ' '
         << format_journal_weight(op.weight);
      break;
  }
  return os.str();
}

}  // namespace ssp
