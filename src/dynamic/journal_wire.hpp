#pragma once

/// \file journal_wire.hpp
/// The single definition of the update-journal line grammar — shared by
/// the journal file parser (update_journal.hpp) and the serving daemon's
/// wire protocol (src/serve/), so journal files and daemon traffic can
/// never drift apart. Everything that tokenizes, parses, or formats a
/// journal line goes through here.
///
/// Grammar, one operation per line:
///
/// ```
/// insert   <u> <v> <w>    % add edge {u, v} with weight w (> 0, finite)
/// delete   <u> <v>        % remove the edge joining u and v
/// reweight <u> <v> <w>    % replace the weight of edge {u, v} with w
/// commit                  % apply everything since the previous commit
/// ```
///
/// `%` or `#` start a comment (whole-line or trailing); blank lines parse
/// as kBlank. Vertex ids are non-negative 0-based integers. Tokens beyond
/// an operation's arity are rejected as trailing garbage. `format_journal_op`
/// emits the canonical spelling (weights printed with enough digits to
/// round-trip bit-exactly), so `parse(format(op)) == op` for every valid op.

#include <stdexcept>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace ssp {

/// One parsed journal operation.
struct JournalOp {
  enum class Kind { kInsert, kDelete, kReweight };
  Kind kind = Kind::kInsert;
  Vertex u = kInvalidVertex;
  Vertex v = kInvalidVertex;
  double weight = 0.0;  ///< insert / reweight only
  /// 1-based source line the op was parsed from (0 = synthetic/unknown) —
  /// carried so resolve-time errors can name the offending position too.
  Index line = 0;
};

/// Classification of one journal/wire line.
struct JournalLine {
  enum class Kind { kBlank, kCommit, kOp };
  Kind kind = Kind::kBlank;
  JournalOp op{};  ///< valid iff kind == kOp
};

/// Malformed journal line: carries the 1-based line number and echoes the
/// offending text, so a server can report the exact position back to the
/// client and a CLI user can find the bad line in a file.
class JournalParseError : public std::runtime_error {
 public:
  JournalParseError(Index line_no, const std::string& what,
                    const std::string& text);
  [[nodiscard]] Index line() const { return line_; }

 private:
  Index line_ = 0;
};

/// Splits a journal line into whitespace-separated tokens, dropping the
/// comment tail (a token starting with '%' or '#' ends the line). A blank
/// or comment-only line yields an empty vector.
[[nodiscard]] std::vector<std::string> tokenize_journal_line(
    const std::string& line);

/// Parses one journal line (`line_no` is 1-based, used for diagnostics).
/// Throws JournalParseError on unknown verbs, wrong arity, non-numeric
/// ids/weights, negative ids, non-positive or non-finite weights, and
/// trailing garbage.
[[nodiscard]] JournalLine parse_journal_line(const std::string& line,
                                             Index line_no);

/// Canonical text of a weight: round-trips through parse_journal_line to
/// the bit-identical double across the full positive-finite range,
/// subnormals (DBL_TRUE_MIN, nextafter(0, 1)) included. Weights the wire
/// format cannot represent — non-positive (including negative zero, which
/// "%.17g" would misprint as the parser-rejected token "-0") or
/// non-finite — throw std::invalid_argument, so formatter and parser agree
/// on exactly the same domain on both the file and wire paths.
[[nodiscard]] std::string format_journal_weight(double w);

/// Canonical text of one operation (no trailing newline), e.g.
/// `insert 0 63 1.25`. Inverse of parse_journal_line for valid ops;
/// insert/reweight ops with unrepresentable weights throw (see
/// format_journal_weight). Delete ops never format their weight field.
[[nodiscard]] std::string format_journal_op(const JournalOp& op);

}  // namespace ssp
