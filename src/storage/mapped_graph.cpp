#include "storage/mapped_graph.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "util/assert.hpp"

// The format is defined little-endian; the library targets little-endian
// hosts only (x86-64 / AArch64), so reads are plain loads.
static_assert(std::endian::native == std::endian::little,
              ".sspb I/O requires a little-endian host");

namespace ssp::storage {

namespace {

[[noreturn]] void sys_fail(const std::string& path, const char* what) {
  throw std::runtime_error("sspb: " + path + ": " + what + ": " +
                           std::strerror(errno));
}

}  // namespace

MappedGraph::MappedGraph(const std::string& path) : path_(path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) sys_fail(path, "cannot open");
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    sys_fail(path, "cannot stat");
  }
  const auto actual_bytes = static_cast<std::uint64_t>(st.st_size);
  if (actual_bytes < kSspbHeaderBytes) {
    ::close(fd);
    throw SspbError(path, actual_bytes, "header",
                    "file is " + std::to_string(actual_bytes) +
                        " bytes — shorter than the " +
                        std::to_string(kSspbHeaderBytes) + "-byte header");
  }
  void* base =
      ::mmap(nullptr, actual_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (base == MAP_FAILED) sys_fail(path, "cannot mmap");
  base_ = base;
  bytes_ = actual_bytes;
  // The destructor does not run when a constructor throws, so every
  // rejection below must release the mapping itself — otherwise a
  // long-lived daemon probing corrupt client files leaks address space.
  try {
    validate(path, actual_bytes);
  } catch (...) {
    unmap();
    throw;
  }
  obs::counter_add("storage.mmap.opens", 1);
  obs::counter_add("storage.mmap.bytes", bytes_);
}

void MappedGraph::validate(const std::string& path,
                           std::uint64_t actual_bytes) {
  // Header validation — every failure names the byte offset and field.
  const auto* u32 = section<std::uint32_t>(0);
  if (u32[0] != kSspbMagic) {
    throw SspbError(path, 0, "magic",
                    "expected \"SSPB\", found bytes 0x" + [&] {
                      char buf[9];
                      std::snprintf(buf, sizeof(buf), "%08x", u32[0]);
                      return std::string(buf);
                    }());
  }
  if (u32[1] != kSspbVersion) {
    throw SspbError(path, 4, "version",
                    "unsupported version " + std::to_string(u32[1]) +
                        " (this build reads version " +
                        std::to_string(kSspbVersion) + ")");
  }
  const auto* i64 = section<std::int64_t>(8);
  const std::int64_t n = i64[0];
  const std::int64_t m = i64[1];
  if (n < 0 || n > std::int64_t{0x7fffffff}) {
    throw SspbError(path, 8, "n",
                    "vertex count " + std::to_string(n) +
                        " out of range [0, 2^31)");
  }
  // Bound m well below the point where sspb_layout's uint64 arithmetic
  // (largest term 16m) could wrap: a crafted huge m must fail here, not
  // overflow into a file_bytes that matches a small file and leave the
  // section pointers past the mapping.
  constexpr std::int64_t kMaxEdges = std::int64_t{1} << 48;
  if (m < 0 || m > kMaxEdges) {
    throw SspbError(path, 16, "m",
                    "edge count " + std::to_string(m) +
                        " out of range [0, 2^48]");
  }
  const auto declared_bytes = *section<std::uint64_t>(24);
  const SspbLayout layout = sspb_layout(static_cast<Index>(n), m);
  if (declared_bytes != layout.file_bytes) {
    throw SspbError(path, 24, "file_bytes",
                    "header declares " + std::to_string(declared_bytes) +
                        " bytes but n=" + std::to_string(n) +
                        ", m=" + std::to_string(m) + " requires " +
                        std::to_string(layout.file_bytes));
  }
  if (actual_bytes != layout.file_bytes) {
    // Truncation (or trailing garbage): name the first missing section.
    const char* field = "file";
    std::uint64_t at = actual_bytes;
    if (actual_bytes < layout.file_bytes) {
      struct SectionEnd {
        std::uint64_t begin;
        const char* name;
      };
      const SectionEnd sections[] = {
          {layout.edge_u, "edge_u"},   {layout.edge_v, "edge_v"},
          {layout.edge_w, "edge_w"},   {layout.adj_ptr, "adj_ptr"},
          {layout.adj_nbr, "adj_nbr"}, {layout.adj_eid, "adj_eid"},
          {layout.adj_w, "adj_w"},     {layout.weighted_degree,
                                        "weighted_degree"},
      };
      for (const auto& s : sections) {
        if (actual_bytes > s.begin) field = s.name;
      }
    }
    throw SspbError(path, at, field,
                    "file is " + std::to_string(actual_bytes) +
                        " bytes, expected " +
                        std::to_string(layout.file_bytes) +
                        (actual_bytes < layout.file_bytes ? " — truncated"
                                                          : " — oversized"));
  }
  n_ = static_cast<Vertex>(n);
  m_ = m;
  layout_ = layout;

  // Structural checks so a corrupt CSR can never index out of the
  // mapping (the "never UB" contract): the row pointer array must start
  // at 0, end at 2m, and be monotone; every neighbor / edge-id /
  // endpoint must land inside its array. One sequential O(n + m) read
  // of the file, paid once at open.
  const auto* adj_ptr = section<Index>(layout_.adj_ptr);
  if (m_ > 0 || n_ > 0) {
    if (adj_ptr[0] != 0) {
      throw SspbError(path, layout_.adj_ptr, "adj_ptr",
                      "adj_ptr[0] = " + std::to_string(adj_ptr[0]) +
                          ", expected 0");
    }
    if (adj_ptr[n_] != 2 * m_) {
      throw SspbError(path,
                      layout_.adj_ptr + static_cast<std::uint64_t>(n_) * 8,
                      "adj_ptr",
                      "adj_ptr[n] = " + std::to_string(adj_ptr[n_]) +
                          ", expected 2m = " + std::to_string(2 * m_));
    }
    for (Vertex v = 0; v < n_; ++v) {
      if (adj_ptr[v] > adj_ptr[v + 1]) {
        throw SspbError(
            path, layout_.adj_ptr + static_cast<std::uint64_t>(v) * 8,
            "adj_ptr",
            "row pointers not monotone at vertex " + std::to_string(v));
      }
    }
  }
  const auto* edge_u = section<Vertex>(layout_.edge_u);
  const auto* edge_v = section<Vertex>(layout_.edge_v);
  for (EdgeId e = 0; e < m_; ++e) {
    const auto i = static_cast<std::size_t>(e);
    if (edge_u[i] < 0 || edge_u[i] >= n_) {
      throw SspbError(path, layout_.edge_u + static_cast<std::uint64_t>(e) * 4,
                      "edge_u",
                      "endpoint " + std::to_string(edge_u[i]) + " of edge " +
                          std::to_string(e) + " out of range [0, " +
                          std::to_string(n_) + ")");
    }
    if (edge_v[i] < 0 || edge_v[i] >= n_) {
      throw SspbError(path, layout_.edge_v + static_cast<std::uint64_t>(e) * 4,
                      "edge_v",
                      "endpoint " + std::to_string(edge_v[i]) + " of edge " +
                          std::to_string(e) + " out of range [0, " +
                          std::to_string(n_) + ")");
    }
  }
  const auto* adj_nbr = section<Vertex>(layout_.adj_nbr);
  const auto* adj_eid = section<EdgeId>(layout_.adj_eid);
  const auto entries = static_cast<std::size_t>(2 * m_);
  for (std::size_t i = 0; i < entries; ++i) {
    if (adj_nbr[i] < 0 || adj_nbr[i] >= n_) {
      throw SspbError(path, layout_.adj_nbr + std::uint64_t{i} * 4, "adj_nbr",
                      "neighbor " + std::to_string(adj_nbr[i]) +
                          " at adjacency slot " + std::to_string(i) +
                          " out of range [0, " + std::to_string(n_) + ")");
    }
    if (adj_eid[i] < 0 || adj_eid[i] >= m_) {
      throw SspbError(path, layout_.adj_eid + std::uint64_t{i} * 8, "adj_eid",
                      "edge id " + std::to_string(adj_eid[i]) +
                          " at adjacency slot " + std::to_string(i) +
                          " out of range [0, " + std::to_string(m_) + ")");
    }
  }
}

MappedGraph::~MappedGraph() { unmap(); }

MappedGraph::MappedGraph(MappedGraph&& other) noexcept
    : path_(std::move(other.path_)),
      base_(other.base_),
      bytes_(other.bytes_),
      n_(other.n_),
      m_(other.m_),
      layout_(other.layout_) {
  other.base_ = nullptr;
  other.bytes_ = 0;
}

MappedGraph& MappedGraph::operator=(MappedGraph&& other) noexcept {
  if (this != &other) {
    unmap();
    path_ = std::move(other.path_);
    base_ = other.base_;
    bytes_ = other.bytes_;
    n_ = other.n_;
    m_ = other.m_;
    layout_ = other.layout_;
    other.base_ = nullptr;
    other.bytes_ = 0;
  }
  return *this;
}

void MappedGraph::unmap() noexcept {
  if (base_ != nullptr) {
    ::munmap(base_, bytes_);
    base_ = nullptr;
    bytes_ = 0;
  }
}

GraphView MappedGraph::view() const {
  SSP_REQUIRE(base_ != nullptr, "MappedGraph: moved-from");
  return GraphView::from_parts(
      n_, m_, section<Vertex>(layout_.edge_u), section<Vertex>(layout_.edge_v),
      section<double>(layout_.edge_w), section<Index>(layout_.adj_ptr),
      section<Vertex>(layout_.adj_nbr), section<EdgeId>(layout_.adj_eid),
      section<double>(layout_.adj_w), section<double>(layout_.weighted_degree));
}

void MappedGraph::release_pages() const {
  if (base_ == nullptr || bytes_ == 0) return;
  obs::counter_add("storage.mmap.release_pages", 1);
  // Best-effort: a failing madvise only costs RSS, never correctness.
  ::madvise(base_, bytes_, MADV_DONTNEED);
}

}  // namespace ssp::storage
