#include "storage/checkpoint.hpp"

#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "obs/metrics.hpp"

static_assert(std::endian::native == std::endian::little,
              "checkpoint I/O requires a little-endian host");

namespace ssp::storage {

namespace {

constexpr std::uint64_t kFixedHeaderBytes = 88;
constexpr std::uint64_t kStatsRecordBytes = 18 * 8;

/// Append-only little-endian encoder over a byte buffer.
class Writer {
 public:
  template <typename T>
  void put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto pos = buf_.size();
    buf_.resize(pos + sizeof(T));
    std::memcpy(buf_.data() + pos, &value, sizeof(T));
  }

  [[nodiscard]] const std::vector<char>& bytes() const { return buf_; }

 private:
  std::vector<char> buf_;
};

/// Bounds-checked little-endian decoder; every failure names the byte
/// offset and field per the SspbError contract.
class Reader {
 public:
  Reader(std::string path, std::vector<char> buf)
      : path_(std::move(path)), buf_(std::move(buf)) {}

  template <typename T>
  T get(const char* field) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > buf_.size()) {
      throw SspbError(path_, pos_, field,
                      "file is " + std::to_string(buf_.size()) +
                          " bytes — truncated while reading " +
                          std::to_string(sizeof(T)) + " bytes");
    }
    T value;
    std::memcpy(&value, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  /// Like get<std::int64_t>, but rejects negative or absurd counts.
  std::int64_t get_count(const char* field) {
    const std::uint64_t at = pos_;
    const auto value = get<std::int64_t>(field);
    if (value < 0) {
      throw SspbError(path_, at, field,
                      "count " + std::to_string(value) + " is negative");
    }
    return value;
  }

  [[nodiscard]] std::uint64_t pos() const { return pos_; }
  [[nodiscard]] std::uint64_t size() const { return buf_.size(); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::vector<char> buf_;
  std::uint64_t pos_ = 0;
};

void put_stats(Writer& w, const UpdateStats& s) {
  w.put<std::int64_t>(s.batch);
  w.put<std::int64_t>(s.inserted);
  w.put<std::int64_t>(s.removed);
  w.put<std::int64_t>(s.reweighted);
  w.put<std::int64_t>(s.tree_removed);
  w.put<std::int64_t>(s.tree_swaps);
  w.put<std::int64_t>(s.graph_edges);
  w.put<std::int64_t>(s.sparsifier_edges);
  w.put<double>(s.dirty_fraction);
  w.put<double>(s.sigma2_estimate);
  w.put<double>(s.seconds);
  w.put<std::uint64_t>(static_cast<std::uint64_t>(s.route));
  w.put<std::uint64_t>(s.reached_target ? 1 : 0);
  for (const double sec : s.stage_seconds) w.put<double>(sec);
}

UpdateStats get_stats(Reader& r) {
  UpdateStats s;
  s.batch = r.get<std::int64_t>("history.batch");
  s.inserted = r.get<std::int64_t>("history.inserted");
  s.removed = r.get<std::int64_t>("history.removed");
  s.reweighted = r.get<std::int64_t>("history.reweighted");
  s.tree_removed = r.get<std::int64_t>("history.tree_removed");
  s.tree_swaps = r.get<std::int64_t>("history.tree_swaps");
  s.graph_edges = r.get<std::int64_t>("history.graph_edges");
  s.sparsifier_edges = r.get<std::int64_t>("history.sparsifier_edges");
  s.dirty_fraction = r.get<double>("history.dirty_fraction");
  s.sigma2_estimate = r.get<double>("history.sigma2_estimate");
  s.seconds = r.get<double>("history.seconds");
  const std::uint64_t route_at = r.pos();
  const auto route = r.get<std::uint64_t>("history.route");
  if (route > 2) {
    throw SspbError(r.path(), route_at, "history.route",
                    "route " + std::to_string(route) +
                        " out of range [0, 2]");
  }
  s.route = static_cast<UpdateRoute>(route);
  s.reached_target = r.get<std::uint64_t>("history.reached_target") != 0;
  for (double& sec : s.stage_seconds) {
    sec = r.get<double>("history.stage_seconds");
  }
  return s;
}

}  // namespace

void save_checkpoint(const std::string& path,
                     const SparsifierCheckpoint& ckpt) {
  Writer w;
  w.put<std::uint32_t>(kSspcMagic);
  w.put<std::uint32_t>(kSspcVersion);
  w.put<std::uint64_t>(ckpt.commits);
  w.put<std::int64_t>(ckpt.state.vertices);
  w.put<std::int64_t>(ckpt.state.edges);
  w.put<std::int64_t>(static_cast<std::int64_t>(ckpt.state.tree_edges.size()));
  w.put<std::int64_t>(
      static_cast<std::int64_t>(ckpt.state.offtree_edges.size()));
  w.put<std::int64_t>(static_cast<std::int64_t>(ckpt.state.history.size()));
  w.put<double>(ckpt.state.lambda_min);
  w.put<double>(ckpt.state.lambda_max);
  w.put<double>(ckpt.state.sigma2_estimate);
  w.put<std::uint32_t>(ckpt.state.reached_target ? 1 : 0);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(ckpt.state.status));
  for (const EdgeId e : ckpt.state.tree_edges) w.put<std::int64_t>(e);
  for (const EdgeId e : ckpt.state.offtree_edges) w.put<std::int64_t>(e);
  for (const UpdateStats& s : ckpt.state.history) put_stats(w, s);

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("checkpoint: cannot open '" + tmp +
                               "' for writing");
    }
    out.write(w.bytes().data(),
              static_cast<std::streamsize>(w.bytes().size()));
    if (!out) {
      throw std::runtime_error("checkpoint: short write to '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("checkpoint: cannot rename '" + tmp +
                             "' over '" + path + "'");
  }
  obs::counter_add("storage.checkpoint.saves", 1);
  obs::counter_add("storage.checkpoint.bytes_written", w.bytes().size());
}

SparsifierCheckpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("checkpoint: cannot open '" + path + "'");
  std::vector<char> buf((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  Reader r(path, std::move(buf));
  obs::counter_add("storage.checkpoint.loads", 1);
  obs::counter_add("storage.checkpoint.bytes_read", r.size());

  const auto magic = r.get<std::uint32_t>("magic");
  if (magic != kSspcMagic) {
    char hex[9];
    std::snprintf(hex, sizeof(hex), "%08x", magic);
    throw SspbError(path, 0, "magic",
                    "expected \"SSPC\", found bytes 0x" + std::string(hex));
  }
  const auto version = r.get<std::uint32_t>("version");
  if (version != kSspcVersion) {
    throw SspbError(path, 4, "version",
                    "unsupported version " + std::to_string(version) +
                        " (this build reads version " +
                        std::to_string(kSspcVersion) + ")");
  }

  SparsifierCheckpoint ckpt;
  ckpt.commits = r.get<std::uint64_t>("commits");
  const auto n = r.get_count("n");
  if (n > std::int64_t{0x7fffffff}) {
    throw SspbError(path, 16, "n",
                    "vertex count " + std::to_string(n) +
                        " out of range [0, 2^31)");
  }
  ckpt.state.vertices = static_cast<Vertex>(n);
  ckpt.state.edges = r.get_count("m");
  const auto tree_count = r.get_count("tree_count");
  const auto offtree_count = r.get_count("offtree_count");
  const auto history_count = r.get_count("history_count");
  // Declared counts must agree with the actual file size before any
  // array is read, so truncation is reported here, not element by
  // element.
  const std::uint64_t expect =
      kFixedHeaderBytes +
      8 * (static_cast<std::uint64_t>(tree_count) +
           static_cast<std::uint64_t>(offtree_count)) +
      kStatsRecordBytes * static_cast<std::uint64_t>(history_count);
  if (r.size() != expect) {
    throw SspbError(path, r.size(), "file",
                    "file is " + std::to_string(r.size()) +
                        " bytes, counts require " + std::to_string(expect) +
                        (r.size() < expect ? " — truncated" : " — oversized"));
  }
  ckpt.state.lambda_min = r.get<double>("lambda_min");
  ckpt.state.lambda_max = r.get<double>("lambda_max");
  ckpt.state.sigma2_estimate = r.get<double>("sigma2_estimate");
  ckpt.state.reached_target = r.get<std::uint32_t>("reached_target") != 0;
  const std::uint64_t status_at = r.pos();
  const auto status = r.get<std::uint32_t>("status");
  if (status > 4 || !is_terminal(static_cast<StepStatus>(status))) {
    throw SspbError(path, status_at, "status",
                    "status " + std::to_string(status) +
                        " is not a terminal StepStatus");
  }
  ckpt.state.status = static_cast<StepStatus>(status);

  ckpt.state.tree_edges.reserve(static_cast<std::size_t>(tree_count));
  for (std::int64_t i = 0; i < tree_count; ++i) {
    const std::uint64_t at = r.pos();
    const auto e = r.get<std::int64_t>("tree_edges");
    if (e < 0 || e >= ckpt.state.edges) {
      throw SspbError(path, at, "tree_edges",
                      "edge id " + std::to_string(e) +
                          " out of range [0, " +
                          std::to_string(ckpt.state.edges) + ")");
    }
    ckpt.state.tree_edges.push_back(e);
  }
  ckpt.state.offtree_edges.reserve(static_cast<std::size_t>(offtree_count));
  for (std::int64_t i = 0; i < offtree_count; ++i) {
    const std::uint64_t at = r.pos();
    const auto e = r.get<std::int64_t>("offtree_edges");
    if (e < 0 || e >= ckpt.state.edges) {
      throw SspbError(path, at, "offtree_edges",
                      "edge id " + std::to_string(e) +
                          " out of range [0, " +
                          std::to_string(ckpt.state.edges) + ")");
    }
    ckpt.state.offtree_edges.push_back(e);
  }
  ckpt.state.history.reserve(static_cast<std::size_t>(history_count));
  for (std::int64_t i = 0; i < history_count; ++i) {
    ckpt.state.history.push_back(get_stats(r));
  }
  return ckpt;
}

}  // namespace ssp::storage
