#pragma once

/// \file mapped_graph.hpp
/// mmap-backed read path of the `.sspb` format: `MappedGraph` opens a
/// converted graph file, validates the header and section bounds (every
/// failure names the byte offset and field — see binary_format.hpp), and
/// exposes the file's edge list + CSR adjacency as a zero-copy
/// `GraphView`. Pages fault in on demand and are dropped again with
/// `release_pages()`, so repeated scans of a graph much larger than the
/// resident-memory budget never accumulate RSS — the mechanism behind the
/// out-of-core scale layer (scale/hierarchical_sparsifier.hpp) and
/// `bench_outofcore`.

#include <cstdint>
#include <string>

#include "graph/graph.hpp"
#include "graph/graph_view.hpp"
#include "storage/binary_format.hpp"

namespace ssp::storage {

class MappedGraph {
 public:
  /// Opens and maps `path` read-only, validating magic, version, counts,
  /// and the total size against the header. Throws `SspbError` on any
  /// malformed or truncated file, std::runtime_error when the file cannot
  /// be opened or mapped.
  explicit MappedGraph(const std::string& path);

  ~MappedGraph();

  MappedGraph(MappedGraph&& other) noexcept;
  MappedGraph& operator=(MappedGraph&& other) noexcept;
  MappedGraph(const MappedGraph&) = delete;
  MappedGraph& operator=(const MappedGraph&) = delete;

  [[nodiscard]] Vertex num_vertices() const { return n_; }
  [[nodiscard]] EdgeId num_edges() const { return m_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t file_bytes() const { return bytes_; }

  /// Zero-copy view over the mapped sections. Valid while the
  /// `MappedGraph` is alive (release_pages() does not invalidate it —
  /// dropped pages fault back in on the next access).
  [[nodiscard]] GraphView view() const;

  /// Deep-copies the file into a finalized heap `Graph` (bit-identical
  /// edge list; finalize() rebuilds the same CSR arrays the file holds).
  [[nodiscard]] Graph materialize() const { return view().materialize(); }

  /// Advises the kernel to drop the mapping's resident pages
  /// (MADV_DONTNEED). Scans after a release re-fault pages on demand;
  /// calling this between out-of-core blocks keeps peak RSS bounded by
  /// one block's working set instead of the whole file.
  void release_pages() const;

 private:
  /// Header + structural validation over the live mapping: magic,
  /// version, count bounds, declared vs actual size, adj_ptr monotonicity,
  /// and range checks on every endpoint / neighbor / edge id — so no
  /// consumer of view() can be driven out of the mapping by a corrupt
  /// file. Sets n_, m_, layout_. Throws SspbError; the constructor
  /// unmaps on any throw.
  void validate(const std::string& path, std::uint64_t actual_bytes);
  void unmap() noexcept;
  template <typename T>
  [[nodiscard]] const T* section(std::uint64_t offset) const {
    return reinterpret_cast<const T*>(static_cast<const char*>(base_) +
                                      offset);
  }

  std::string path_;
  void* base_ = nullptr;
  std::uint64_t bytes_ = 0;
  Vertex n_ = 0;
  EdgeId m_ = 0;
  SspbLayout layout_{};
};

}  // namespace ssp::storage
