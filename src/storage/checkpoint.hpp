#pragma once

/// \file checkpoint.hpp
/// Sparsifier-state checkpoint files (`.sspc`): the serialized form of a
/// `DynamicRestoreState` plus the journal position it corresponds to.
/// A serving session periodically saves one next to its journal; on
/// restart the daemon loads the snapshot, replays only the journal tail
/// past `commits`, and resumes **bit-identical** to a never-restarted
/// process (tests/test_storage.cpp and the serve restart smoke prove it).
///
/// Writes are atomic: the payload goes to `<path>.tmp` and is renamed
/// over `path`, so a crash mid-checkpoint leaves the previous checkpoint
/// intact, never a torn file. Reads validate every field and throw
/// `SspbError` naming the byte offset and field on any corruption —
/// the same error contract as the `.sspb` graph format.
///
/// Layout (version 1, little-endian, after the 8-byte magic+version):
///
/// ```
/// offset  size   field
///      0  u32    magic "SSPC"
///      4  u32    version (currently 1)
///      8  u64    commits — journal batches covered by this snapshot
///     16  i64    n, 24 i64 m — graph shape at the checkpointed batch
///     32  i64    tree_count, 40 i64 offtree_count, 48 i64 history_count
///     56  f64    lambda_min, 64 f64 lambda_max, 72 f64 sigma2_estimate
///     80  u32    reached_target, 84 u32 status (terminal StepStatus)
///     88  i64 × tree_count      backbone tree edge ids (rooted order)
///     ..  i64 × offtree_count   accepted off-tree ids (acceptance order)
///     ..  144 × history_count   UpdateStats records (18 × 8-byte fields)
/// ```

#include <cstdint>
#include <string>

#include "dynamic/dynamic_sparsifier.hpp"
#include "storage/binary_format.hpp"

namespace ssp::storage {

/// "SSPC" as a little-endian u32 (C,P,S,S bytes ascending).
inline constexpr std::uint32_t kSspcMagic = 0x43505353u;
inline constexpr std::uint32_t kSspcVersion = 1;

/// A restorable sparsifier snapshot tied to a journal position.
struct SparsifierCheckpoint {
  /// Committed journal batches this snapshot covers: replay resumes at
  /// batch `commits` (0-based) of the journal file.
  std::uint64_t commits = 0;
  DynamicRestoreState state;
};

/// Serializes `ckpt` to `path` atomically (`<path>.tmp` + rename).
/// Throws std::runtime_error on I/O failure.
void save_checkpoint(const std::string& path,
                     const SparsifierCheckpoint& ckpt);

/// Loads and fully validates a checkpoint. Throws `SspbError` (with byte
/// offset and field name) on wrong magic, unsupported version, negative
/// or inconsistent counts, out-of-range enums, or truncation;
/// std::runtime_error when the file cannot be opened.
[[nodiscard]] SparsifierCheckpoint load_checkpoint(const std::string& path);

}  // namespace ssp::storage
