#pragma once

/// \file sspb_io.hpp
/// `.sspb` writers: serialize any `GraphView` (heap graph or another
/// mapping), and convert Matrix Market files with a memory-lean streaming
/// pipeline — the engine behind the `ssp_convert` tool.
///
/// `convert_mtx_to_sspb` reproduces `load_graph_mtx` **bit for bit**
/// (same §4 magnitude rule, same coalesce order, same largest-component
/// relabeling — tests/test_storage.cpp proves the identity per generator
/// family) while staying memory-lean: entries stream into packed 16-byte
/// triplets, the pair rule and component filter run over one in-place
/// sort plus O(n) union-find arrays, and the CSR adjacency (the 2m-entry
/// bulk of the output) is scattered directly into the mmap'd output file
/// instead of living on the heap. Peak transient memory is ~16 bytes per
/// stored matrix entry + O(n), versus the ~100 bytes/edge of the
/// CsrMatrix → Graph → coalesce in-core path.

#include <cstdint>
#include <string>

#include "graph/graph_view.hpp"
#include "util/types.hpp"

namespace ssp::storage {

/// Telemetry of one conversion.
struct ConvertStats {
  Vertex vertices = 0;         ///< vertices written (largest component)
  EdgeId edges = 0;            ///< edges written
  Vertex dropped_vertices = 0; ///< vertices outside the largest component
  EdgeId dropped_edges = 0;    ///< edges outside the largest component
  std::uint64_t file_bytes = 0;
};

/// Serializes `g` as a version-1 `.sspb` file (see binary_format.hpp).
/// The file is written through a private mapping sized up front, so a
/// crash mid-write can only leave a file whose header size check fails —
/// never a silently short read. Throws std::runtime_error on I/O errors.
void write_sspb(const std::string& path, const GraphView& g);

/// Streams `mtx_path` (Matrix Market, any supported header) into a
/// `.sspb` file at `out_path`. The resulting graph is bit-identical to
/// `load_graph_mtx(mtx_path)` — §4 magnitude conversion, coalesced
/// (lo, hi)-sorted edges, largest component kept with order-preserving
/// relabeling. Throws std::runtime_error on malformed input (same
/// messages as the mtx reader) or I/O failure.
ConvertStats convert_mtx_to_sspb(const std::string& mtx_path,
                                 const std::string& out_path);

}  // namespace ssp::storage
