#pragma once

/// \file binary_format.hpp
/// The `.sspb` on-disk graph format (version 1) — the zero-copy storage
/// layer behind `storage::MappedGraph` and the `ssp_convert` tool.
///
/// Layout (all integers little-endian, sections 8-byte aligned, fixed
/// order; every offset is derivable from (n, m) alone):
///
/// ```
/// offset  size        field
///      0  4           magic "SSPB"
///      4  u32         version (currently 1)
///      8  i64         n — vertex count
///     16  i64         m — edge count
///     24  u64         file_bytes — total file size (truncation check)
///     32  i32 × m     edge_u          ┐
///     ..  i32 × m     edge_v          │ SoA edge list, id order
///     ..  f64 × m     edge_w          ┘
///     ..  i64 × (n+1) adj_ptr         ┐
///     ..  i32 × 2m    adj_nbr         │ CSR adjacency — exactly the
///     ..  i64 × 2m    adj_eid         │ arrays Graph::finalize() builds
///     ..  f64 × 2m    adj_w           ┘
///     ..  f64 × n     weighted_degree
/// ```
///
/// The CSR sections are byte-identical to the heap `Graph`'s private
/// arrays for the same edge list, so a `GraphView` over the mapping and a
/// materialized heap copy are indistinguishable to every consumer.
///
/// Error contract (the `JournalParseError` precedent, carried to binary
/// files): every validation failure throws `SspbError` naming the file,
/// the absolute byte offset, and the field being read — wrong magic,
/// unsupported version, negative or overflowing counts, and truncation
/// are all diagnosed precisely, never UB or silent garbage.

#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/types.hpp"

namespace ssp::storage {

/// "SSPB" as a little-endian u32 (B,P,S,S bytes ascending).
inline constexpr std::uint32_t kSspbMagic = 0x42505353u;
inline constexpr std::uint32_t kSspbVersion = 1;
inline constexpr std::uint64_t kSspbHeaderBytes = 32;

/// Malformed / truncated `.sspb` (or checkpoint) file: names the path,
/// the absolute byte offset of the problem, and the field being decoded.
class SspbError : public std::runtime_error {
 public:
  SspbError(const std::string& path, std::uint64_t byte_offset,
            const std::string& field, const std::string& what)
      : std::runtime_error("sspb: " + path + ": byte " +
                           std::to_string(byte_offset) + " (field '" + field +
                           "'): " + what),
        byte_offset_(byte_offset),
        field_(field) {}

  [[nodiscard]] std::uint64_t byte_offset() const { return byte_offset_; }
  [[nodiscard]] const std::string& field() const { return field_; }

 private:
  std::uint64_t byte_offset_;
  std::string field_;
};

/// Byte offsets of every section for a graph with `n` vertices and `m`
/// edges. Sections are 8-byte aligned (i32 sections are padded out).
struct SspbLayout {
  std::uint64_t edge_u = 0;
  std::uint64_t edge_v = 0;
  std::uint64_t edge_w = 0;
  std::uint64_t adj_ptr = 0;
  std::uint64_t adj_nbr = 0;
  std::uint64_t adj_eid = 0;
  std::uint64_t adj_w = 0;
  std::uint64_t weighted_degree = 0;
  std::uint64_t file_bytes = 0;
};

[[nodiscard]] constexpr std::uint64_t sspb_align8(std::uint64_t x) {
  return (x + 7) & ~std::uint64_t{7};
}

[[nodiscard]] constexpr SspbLayout sspb_layout(Index n, EdgeId m) {
  const auto un = static_cast<std::uint64_t>(n);
  const auto um = static_cast<std::uint64_t>(m);
  SspbLayout lo;
  lo.edge_u = kSspbHeaderBytes;
  lo.edge_v = lo.edge_u + sspb_align8(um * 4);
  lo.edge_w = lo.edge_v + sspb_align8(um * 4);
  lo.adj_ptr = lo.edge_w + um * 8;
  lo.adj_nbr = lo.adj_ptr + (un + 1) * 8;
  lo.adj_eid = lo.adj_nbr + sspb_align8(2 * um * 4);
  lo.adj_w = lo.adj_eid + 2 * um * 8;
  lo.weighted_degree = lo.adj_w + 2 * um * 8;
  lo.file_bytes = lo.weighted_degree + un * 8;
  return lo;
}

}  // namespace ssp::storage
