#include "storage/sspb_io.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "storage/binary_format.hpp"
#include "util/assert.hpp"
#include "util/union_find.hpp"

static_assert(std::endian::native == std::endian::little,
              ".sspb I/O requires a little-endian host");

namespace ssp::storage {

namespace {

[[noreturn]] void sys_fail(const std::string& path, const char* what) {
  throw std::runtime_error("sspb: " + path + ": " + what + ": " +
                           std::strerror(errno));
}

/// Read-write mapping of a freshly created output file, sized up front.
/// posix_fallocate reserves the blocks for real (a sparse ftruncate would
/// leave page write-back to fail with SIGBUS on a full filesystem) and
/// the new extent reads as zeros, so counting passes can accumulate
/// directly into the mapped sections. The header (and with it the magic)
/// is written last, so a crash mid-write leaves a file the MappedGraph
/// validator rejects at byte 0 instead of a silently short graph.
class MappedOutput {
 public:
  MappedOutput(const std::string& path, std::uint64_t bytes)
      : path_(path), bytes_(bytes) {
    const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) sys_fail(path, "cannot create");
    if (const int rc = ::posix_fallocate(fd, 0, static_cast<off_t>(bytes));
        rc != 0) {
      ::close(fd);
      errno = rc;  // posix_fallocate returns the error, errno is unspecified
      sys_fail(path, "cannot allocate");
    }
    base_ = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    ::close(fd);
    if (base_ == MAP_FAILED) {
      base_ = nullptr;
      sys_fail(path, "cannot mmap for writing");
    }
  }

  ~MappedOutput() {
    if (base_ != nullptr) ::munmap(base_, bytes_);
  }

  MappedOutput(const MappedOutput&) = delete;
  MappedOutput& operator=(const MappedOutput&) = delete;

  template <typename T>
  [[nodiscard]] T* section(std::uint64_t offset) const {
    return reinterpret_cast<T*>(static_cast<char*>(base_) + offset);
  }

  /// Writes the 32-byte header. Call once all sections are in place.
  void write_header(Index n, EdgeId m) const {
    auto* u32 = section<std::uint32_t>(0);
    u32[0] = kSspbMagic;
    u32[1] = kSspbVersion;
    auto* i64 = section<std::int64_t>(8);
    i64[0] = n;
    i64[1] = m;
    *section<std::uint64_t>(24) = bytes_;
  }

  /// Flushes the mapping to the file and checks for write-back errors.
  /// Space was reserved up front, so msync failures here are genuine I/O
  /// errors, not late ENOSPC.
  void sync() const {
    if (::msync(base_, bytes_, MS_SYNC) != 0) sys_fail(path_, "cannot sync");
  }

 private:
  std::string path_;
  std::uint64_t bytes_;
  void* base_ = nullptr;
};

/// Fills every section after the header from the edge list `(u, v, w)[i]`
/// (accessed through `edge_at`), rebuilding the CSR adjacency exactly as
/// `Graph::finalize()` does: counting sort per endpoint, then `(u → v)`
/// followed by `(v → u)` per edge in id order, then weighted degrees
/// accumulated in the same order. All 2m-entry arrays are written
/// directly into the mapping; the only heap scratch is the O(n) slot
/// array.
template <typename EdgeAt>
void fill_sections(const MappedOutput& out, const SspbLayout& lo, Index n,
                   EdgeId m, EdgeAt&& edge_at) {
  auto* edge_u = out.section<Vertex>(lo.edge_u);
  auto* edge_v = out.section<Vertex>(lo.edge_v);
  auto* edge_w = out.section<double>(lo.edge_w);
  auto* adj_ptr = out.section<Index>(lo.adj_ptr);
  auto* adj_nbr = out.section<Vertex>(lo.adj_nbr);
  auto* adj_eid = out.section<EdgeId>(lo.adj_eid);
  auto* adj_w = out.section<double>(lo.adj_w);
  auto* wdeg = out.section<double>(lo.weighted_degree);

  // Pass 1: edge SoA + per-endpoint counts (adj_ptr starts zero-filled).
  for (EdgeId id = 0; id < m; ++id) {
    const Edge e = edge_at(id);
    edge_u[id] = e.u;
    edge_v[id] = e.v;
    edge_w[id] = e.weight;
    ++adj_ptr[static_cast<std::size_t>(e.u) + 1];
    ++adj_ptr[static_cast<std::size_t>(e.v) + 1];
  }
  for (Index i = 0; i < n; ++i) {
    adj_ptr[static_cast<std::size_t>(i) + 1] +=
        adj_ptr[static_cast<std::size_t>(i)];
  }

  // Pass 2: scatter the directed entries in finalize()'s order.
  std::vector<Index> slot(adj_ptr, adj_ptr + n);
  for (EdgeId id = 0; id < m; ++id) {
    const Vertex u = edge_u[id];
    const Vertex v = edge_v[id];
    const double w = edge_w[id];
    const auto put = [&](Vertex from, Vertex to) {
      const auto pos =
          static_cast<std::size_t>(slot[static_cast<std::size_t>(from)]++);
      adj_nbr[pos] = to;
      adj_eid[pos] = id;
      adj_w[pos] = w;
    };
    put(u, v);
    put(v, u);
    wdeg[static_cast<std::size_t>(u)] += w;
    wdeg[static_cast<std::size_t>(v)] += w;
  }
}

// ---- streaming Matrix Market conversion ---------------------------------

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

[[noreturn]] void mtx_fail(const std::string& msg) {
  throw std::runtime_error("matrix market: " + msg);
}

struct MtxHeader {
  bool pattern = false;
  bool symmetric = false;
  bool skew = false;
};

// Mirrors mtx_io.cpp's parse_header, including its error messages, so a
// file rejected by load_graph_mtx is rejected here with the same text.
MtxHeader parse_mtx_header(const std::string& line) {
  std::istringstream is(line);
  std::string banner, object, format, field, symmetry;
  is >> banner >> object >> format >> field >> symmetry;
  if (to_lower(banner) != "%%matrixmarket") {
    mtx_fail("missing %%MatrixMarket banner");
  }
  if (to_lower(object) != "matrix") mtx_fail("only 'matrix' objects supported");
  if (to_lower(format) != "coordinate") {
    mtx_fail("only 'coordinate' format supported");
  }
  MtxHeader h;
  const std::string f = to_lower(field);
  if (f == "pattern") {
    h.pattern = true;
  } else if (f != "real" && f != "integer") {
    mtx_fail("unsupported field type '" + field + "'");
  }
  const std::string s = to_lower(symmetry);
  if (s == "symmetric") {
    h.symmetric = true;
  } else if (s == "skew-symmetric") {
    h.symmetric = true;
    h.skew = true;
  } else if (s != "general") {
    mtx_fail("unsupported symmetry '" + symmetry + "'");
  }
  return h;
}

/// One directed stored entry, 0-based. 16 bytes — the whole transient
/// footprint of a conversion is one vector of these plus O(n) arrays.
struct Entry {
  Vertex row;
  Vertex col;
  double value;
};
static_assert(sizeof(Entry) == 16);

}  // namespace

void write_sspb(const std::string& path, const GraphView& g) {
  const Index n = g.num_vertices();
  const EdgeId m = g.num_edges();
  const SspbLayout lo = sspb_layout(n, m);
  MappedOutput out(path, lo.file_bytes);
  fill_sections(out, lo, n, m, [&](EdgeId id) { return g.edge(id); });
  out.write_header(n, m);
  out.sync();
}

ConvertStats convert_mtx_to_sspb(const std::string& mtx_path,
                                 const std::string& out_path) {
  std::ifstream in(mtx_path);
  if (!in) throw std::runtime_error("cannot open '" + mtx_path + "'");
  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error("empty file");
  const MtxHeader h = parse_mtx_header(line);

  // Skip comments / blanks to the size line.
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    break;
  }
  std::istringstream sizes(line);
  Index rows = 0, cols = 0, nnz = 0;
  if (!(sizes >> rows >> cols >> nnz)) mtx_fail("malformed size line");
  if (rows < 0 || cols < 0 || nnz < 0) mtx_fail("negative sizes");
  SSP_REQUIRE(rows == cols, "graph_from_matrix: matrix not square");
  SSP_REQUIRE(rows <= Index{0x7fffffff},
              "convert_mtx_to_sspb: vertex count exceeds 2^31");

  // Stream the entries into packed triplets (plus the symmetric/skew
  // mirrors read_matrix_market would synthesize). Diagonal entries ride
  // along so the §4 finite check below sees them, exactly like the
  // in-core path, and are dropped afterwards.
  std::vector<Entry> entries;
  entries.reserve(static_cast<std::size_t>(h.symmetric ? 2 * nnz : nnz));
  Index seen = 0;
  while (seen < nnz) {
    if (!std::getline(in, line)) mtx_fail("unexpected end of data");
    if (line.empty() || line[0] == '%') continue;
    std::istringstream es(line);
    Index r = 0, c = 0;
    double v = 1.0;
    if (!(es >> r >> c)) mtx_fail("malformed entry line");
    if (!h.pattern && !(es >> v)) mtx_fail("missing value");
    if (r < 1 || r > rows || c < 1 || c > cols) {
      mtx_fail("entry index out of range");
    }
    entries.push_back({static_cast<Vertex>(r - 1), static_cast<Vertex>(c - 1),
                       v});
    if (h.symmetric && r != c) {
      entries.push_back({static_cast<Vertex>(c - 1),
                         static_cast<Vertex>(r - 1), h.skew ? -v : v});
    }
    ++seen;
  }
  in.close();

  // One sort groups everything the in-core pipeline needs: duplicates of
  // the same directed (row, col) become adjacent (from_triplets sums
  // them), and the two orientations of a pair become adjacent under the
  // (lo, hi) major key (graph_from_matrix's §4 rule takes the max
  // magnitude across them). Ordering by (lo, hi) is also exactly the
  // coalesced edge order load_graph_mtx produces via std::map. The sort
  // must be stable: duplicates of one directed coordinate compare
  // equivalent, and their sum below has to run in file order — the order
  // load_graph_mtx accumulates in — for bit-for-bit identity
  // (floating-point addition does not commute in bits).
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     const auto la = std::minmax(a.row, a.col);
                     const auto lb = std::minmax(b.row, b.col);
                     if (la != lb) return la < lb;
                     return a.row < b.row;
                   });

  // Collapse each (lo, hi) group to one undirected edge, compacted into
  // the prefix of `entries` (the write position never overtakes the read
  // position, so the compaction is in place).
  EdgeId me = 0;
  std::size_t i = 0;
  while (i < entries.size()) {
    const std::pair<Vertex, Vertex> key =
        std::minmax(entries[i].row, entries[i].col);
    double magnitude = 0.0;
    while (i < entries.size() &&
           std::pair<Vertex, Vertex>(std::minmax(
               entries[i].row, entries[i].col)) == key) {
      // Sum duplicates of the same directed coordinate, then apply the
      // §4 finite check and magnitude rule to the sum — the same value
      // from_triplets would hand graph_from_matrix.
      const Vertex r = entries[i].row;
      const Vertex c = entries[i].col;
      double sum = 0.0;
      while (i < entries.size() && entries[i].row == r &&
             entries[i].col == c) {
        sum += entries[i].value;
        ++i;
      }
      SSP_REQUIRE(std::isfinite(sum),
                  "graph_from_matrix: non-finite entry at (" +
                      std::to_string(r + 1) + ", " + std::to_string(c + 1) +
                      ") — cannot convert to an edge weight");
      magnitude = std::max(magnitude, std::abs(sum));
    }
    if (key.first == key.second) continue;  // self-loops discarded
    if (magnitude <= 0.0) continue;         // explicit zeros are non-edges
    entries[static_cast<std::size_t>(me)] = {
        key.first, key.second, h.pattern ? 1.0 : magnitude};
    ++me;
  }
  entries.resize(static_cast<std::size_t>(me));
  if (me == 0) {
    throw std::runtime_error(
        "matrix market: '" + mtx_path +
        "' contains no usable off-diagonal entries — the §4 conversion "
        "produced an edgeless graph");
  }

  // Largest connected component, replicating largest_component()'s
  // choices bit for bit: component labels in ascending first-vertex
  // order, first label of maximal size wins, and the surviving vertices
  // keep their relative order — so the (lo, hi)-sorted edge order above
  // survives the relabeling unchanged.
  UnionFind uf(rows);
  for (EdgeId e = 0; e < me; ++e) {
    uf.unite(entries[static_cast<std::size_t>(e)].row,
             entries[static_cast<std::size_t>(e)].col);
  }
  std::vector<Vertex> comp_of_root(static_cast<std::size_t>(rows), -1);
  std::vector<Index> comp_size;
  for (Index v = 0; v < rows; ++v) {
    const auto root = static_cast<std::size_t>(uf.find(v));
    if (comp_of_root[root] < 0) {
      comp_of_root[root] = static_cast<Vertex>(comp_size.size());
      comp_size.push_back(0);
    }
    ++comp_size[static_cast<std::size_t>(comp_of_root[root])];
  }
  const auto best = static_cast<Vertex>(std::distance(
      comp_size.begin(),
      std::max_element(comp_size.begin(), comp_size.end())));

  std::vector<Vertex> old_to_new(static_cast<std::size_t>(rows), -1);
  Vertex kept_n = 0;
  for (Index v = 0; v < rows; ++v) {
    if (comp_of_root[static_cast<std::size_t>(uf.find(v))] == best) {
      old_to_new[static_cast<std::size_t>(v)] = kept_n++;
    }
  }
  EdgeId kept_m = 0;
  for (EdgeId e = 0; e < me; ++e) {
    auto& t = entries[static_cast<std::size_t>(e)];
    const Vertex nu = old_to_new[static_cast<std::size_t>(t.row)];
    if (nu < 0) continue;  // both endpoints share a component
    entries[static_cast<std::size_t>(kept_m)] = {
        nu, old_to_new[static_cast<std::size_t>(t.col)], t.value};
    ++kept_m;
  }

  const SspbLayout lo = sspb_layout(kept_n, kept_m);
  MappedOutput out(out_path, lo.file_bytes);
  fill_sections(out, lo, kept_n, kept_m, [&](EdgeId id) {
    const Entry& t = entries[static_cast<std::size_t>(id)];
    return Edge{t.row, t.col, t.value};
  });
  out.write_header(kept_n, kept_m);
  out.sync();

  ConvertStats stats;
  stats.vertices = kept_n;
  stats.edges = kept_m;
  stats.dropped_vertices = static_cast<Vertex>(rows) - kept_n;
  stats.dropped_edges = me - kept_m;
  stats.file_bytes = lo.file_bytes;
  return stats;
}

}  // namespace ssp::storage
