#include "tree/stretch.hpp"

#include <algorithm>

#include "tree/lca.hpp"

namespace ssp {

StretchReport compute_stretch(const SpanningTree& t) {
  const LcaIndex lca(t);
  StretchReport r;
  r.offtree_edges = t.offtree_edge_ids();
  r.offtree_stretch.reserve(r.offtree_edges.size());
  for (EdgeId e : r.offtree_edges) {
    const double s = lca.stretch(e);
    r.offtree_stretch.push_back(s);
    r.total_offtree += s;
    r.max_offtree = std::max(r.max_offtree, s);
  }
  r.mean_offtree =
      r.offtree_edges.empty()
          ? 0.0
          : r.total_offtree / static_cast<double>(r.offtree_edges.size());
  r.total_all = r.total_offtree +
                static_cast<double>(t.tree_edge_ids().size());
  return r;
}

}  // namespace ssp
