#include "tree/akpw.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "util/assert.hpp"
#include "util/union_find.hpp"

namespace ssp {

namespace {

/// One randomized ball-growing / contraction round over the cluster
/// multigraph induced by `active` (graph edge ids whose endpoints lie in
/// different clusters). Tree edges discovered by the BFS are appended to
/// `tree_edges` and their ball's clusters merged in `uf`.
/// \returns the number of cluster merges performed.
Index cluster_round(const Graph& g, std::span<const EdgeId> active,
                    UnionFind& uf, std::vector<EdgeId>& tree_edges,
                    double ball_p, Rng& rng) {
  // Collect distinct cluster representatives touched by active edges and
  // give them dense indices.
  const Vertex n = g.num_vertices();
  std::vector<Vertex> dense_of(static_cast<std::size_t>(n), kInvalidVertex);
  std::vector<Vertex> rep_of_dense;
  auto dense_id = [&](Vertex rep) {
    auto& d = dense_of[static_cast<std::size_t>(rep)];
    if (d == kInvalidVertex) {
      d = static_cast<Vertex>(rep_of_dense.size());
      rep_of_dense.push_back(rep);
    }
    return d;
  };

  struct Arc {
    Vertex from;
    Vertex to;
    EdgeId eid;
  };
  std::vector<Arc> arcs;
  arcs.reserve(active.size() * 2);
  for (EdgeId eid : active) {
    const Edge& e = g.edge(eid);
    const Vertex cu = static_cast<Vertex>(uf.find(e.u));
    const Vertex cv = static_cast<Vertex>(uf.find(e.v));
    if (cu == cv) continue;
    const Vertex du = dense_id(cu);
    const Vertex dv = dense_id(cv);
    arcs.push_back({du, dv, eid});
    arcs.push_back({dv, du, eid});
  }
  const Vertex nc = static_cast<Vertex>(rep_of_dense.size());
  if (nc == 0) return 0;

  // CSR adjacency over dense cluster ids.
  std::vector<Index> ptr(static_cast<std::size_t>(nc) + 1, 0);
  for (const Arc& a : arcs) ++ptr[static_cast<std::size_t>(a.from) + 1];
  for (Vertex c = 0; c < nc; ++c) {
    ptr[static_cast<std::size_t>(c) + 1] += ptr[static_cast<std::size_t>(c)];
  }
  std::vector<Index> slot(ptr.begin(), ptr.end() - 1);
  std::vector<Vertex> nbr(arcs.size());
  std::vector<EdgeId> nbr_eid(arcs.size());
  for (const Arc& a : arcs) {
    const auto pos = static_cast<std::size_t>(slot[static_cast<std::size_t>(a.from)]++);
    nbr[pos] = a.to;
    nbr_eid[pos] = a.eid;
  }

  // Random center order; geometric-radius BFS balls.
  std::vector<Vertex> centers(static_cast<std::size_t>(nc));
  for (Vertex c = 0; c < nc; ++c) centers[static_cast<std::size_t>(c)] = c;
  rng.shuffle(centers);

  std::vector<char> visited(static_cast<std::size_t>(nc), 0);
  std::vector<Vertex> frontier;
  std::vector<Vertex> next;
  Index merges = 0;
  const Index radius_cap =
      4 + 4 * static_cast<Index>(std::log2(static_cast<double>(nc) + 1.0));

  for (Vertex c : centers) {
    if (visited[static_cast<std::size_t>(c)] != 0) continue;
    visited[static_cast<std::size_t>(c)] = 1;
    // Radius = 1 + Geometric(p): always take >= 1 BFS layer so every
    // unvisited neighbor of the center merges.
    Index radius = 1;
    while (radius < radius_cap && rng.uniform() >= ball_p) ++radius;

    frontier.assign(1, c);
    for (Index layer = 0; layer < radius && !frontier.empty(); ++layer) {
      next.clear();
      for (Vertex f : frontier) {
        for (Index k = ptr[static_cast<std::size_t>(f)];
             k < ptr[static_cast<std::size_t>(f) + 1]; ++k) {
          const Vertex t = nbr[static_cast<std::size_t>(k)];
          if (visited[static_cast<std::size_t>(t)] != 0) continue;
          visited[static_cast<std::size_t>(t)] = 1;
          tree_edges.push_back(nbr_eid[static_cast<std::size_t>(k)]);
          const bool merged =
              uf.unite(rep_of_dense[static_cast<std::size_t>(c)],
                       rep_of_dense[static_cast<std::size_t>(t)]);
          SSP_ASSERT(merged, "akpw: ball BFS reached an already-merged cluster");
          ++merges;
          next.push_back(t);
        }
      }
      frontier.swap(next);
    }
  }
  return merges;
}

}  // namespace

SpanningTree akpw_low_stretch_tree(const Graph& g, Rng& rng,
                                   const AkpwOptions& opts) {
  SSP_REQUIRE(g.finalized(), "akpw: graph must be finalized");
  SSP_REQUIRE(g.num_vertices() >= 1, "akpw: empty graph");
  SSP_REQUIRE(opts.class_ratio > 1.0, "akpw: class_ratio must exceed 1");
  const Vertex n = g.num_vertices();
  if (n == 1) return SpanningTree(g, {}, 0);

  const double p =
      opts.ball_p > 0.0
          ? opts.ball_p
          : 1.0 / (std::log2(static_cast<double>(n)) + 1.0);

  // Bucket edges by geometric length classes (length = 1/weight; the
  // heaviest edges land in class 0 and are processed first).
  double len_min = std::numeric_limits<double>::infinity();
  for (const Edge& e : g.edges()) len_min = std::min(len_min, 1.0 / e.weight);
  std::map<int, std::vector<EdgeId>> classes;
  const double log_ratio = std::log(opts.class_ratio);
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    const double len = 1.0 / g.edge(id).weight;
    const int cls = static_cast<int>(std::floor(
        std::log(len / len_min) / log_ratio + 1e-12));
    classes[cls].push_back(id);
  }

  UnionFind uf(n);
  std::vector<EdgeId> tree_edges;
  tree_edges.reserve(static_cast<std::size_t>(n) - 1);
  std::vector<EdgeId> active;

  auto compact_active = [&] {
    std::erase_if(active, [&](EdgeId id) {
      const Edge& e = g.edge(id);
      return uf.same(e.u, e.v);
    });
  };

  for (const auto& [cls, ids] : classes) {
    active.insert(active.end(), ids.begin(), ids.end());
    compact_active();
    if (active.empty()) continue;
    cluster_round(g, active, uf, tree_edges, p, rng);
    compact_active();
    if (uf.num_sets() == 1) break;
  }

  // All classes processed; keep clustering on the full remaining edge set
  // until a single cluster remains (must terminate on connected graphs).
  int stall_guard = 0;
  while (uf.num_sets() > 1) {
    SSP_REQUIRE(!active.empty(), "akpw: graph is not connected");
    const Index merges = cluster_round(g, active, uf, tree_edges, p, rng);
    compact_active();
    if (merges == 0 && ++stall_guard > 3) {
      // Pathological randomized stall: finish deterministically.
      for (EdgeId id : active) {
        const Edge& e = g.edge(id);
        if (uf.unite(e.u, e.v)) tree_edges.push_back(id);
      }
      compact_active();
    }
  }
  return SpanningTree(g, std::move(tree_edges), opts.root);
}

}  // namespace ssp
