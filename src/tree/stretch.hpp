#pragma once

/// \file stretch.hpp
/// Per-edge and total stretch of a spanning tree.
///
/// st_T(e) = w(e) · R_T(u, v); tree edges have stretch exactly 1. The total
/// over all edges equals Trace(L_T⁺ L_G) (paper Eq. (4)), the quantity the
/// low-stretch-tree theory bounds by O(m log n log log n) and which
/// determines how many large generalized eigenvalues the tree
/// preconditioner can have [21].

#include <vector>

#include "tree/spanning_tree.hpp"

namespace ssp {

struct StretchReport {
  std::vector<EdgeId> offtree_edges;    ///< ascending edge ids
  std::vector<double> offtree_stretch;  ///< aligned with offtree_edges
  double total_offtree = 0.0;           ///< Σ stretch over off-tree edges
  double total_all = 0.0;               ///< + one per tree edge = Trace(L_T⁺ L_G)
  double max_offtree = 0.0;
  double mean_offtree = 0.0;
};

/// Computes the stretch of every off-tree edge via LCA (O(m log n)).
[[nodiscard]] StretchReport compute_stretch(const SpanningTree& t);

}  // namespace ssp
