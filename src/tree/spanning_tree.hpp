#pragma once

/// \file spanning_tree.hpp
/// Rooted spanning tree of a connected graph — the backbone of the paper's
/// sparsifier (§3.1 step (a)).
///
/// A `SpanningTree` references its host graph (which must outlive it) and
/// stores parent pointers, BFS order, depths, and the *resistance to root*
/// r(v) = Σ 1/w along the root path. Resistances give tree effective
/// resistances via LCA: R_T(u,v) = r(u) + r(v) − 2 r(lca), which is what
/// both the stretch computation and the "spectrally-unique" analysis of
/// paper §3.3 consume.

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/types.hpp"

namespace ssp {

class SpanningTree {
 public:
  /// Builds the rooted structure from exactly n−1 edge ids of `g` that form
  /// a spanning tree. Throws std::invalid_argument when the edge set is not
  /// a spanning tree of `g` (wrong count, cycle, or disconnected).
  SpanningTree(const Graph& g, std::vector<EdgeId> tree_edges,
               Vertex root = 0);

  [[nodiscard]] const Graph& graph() const { return *g_; }
  [[nodiscard]] Vertex root() const { return root_; }
  [[nodiscard]] Vertex num_vertices() const { return g_->num_vertices(); }

  /// Ids (into graph().edges()) of the n−1 tree edges.
  [[nodiscard]] std::span<const EdgeId> tree_edge_ids() const {
    return tree_edges_;
  }

  /// True when graph edge `e` is a tree edge.
  [[nodiscard]] bool contains(EdgeId e) const;

  /// Ids of all non-tree edges, in ascending id order.
  [[nodiscard]] std::vector<EdgeId> offtree_edge_ids() const;

  [[nodiscard]] EdgeId num_offtree_edges() const {
    return g_->num_edges() - static_cast<EdgeId>(tree_edges_.size());
  }

  /// Parent of `v` in the rooted tree (kInvalidVertex for the root).
  [[nodiscard]] Vertex parent(Vertex v) const;

  /// Graph edge id connecting `v` to its parent (kInvalidEdge for root).
  [[nodiscard]] EdgeId parent_edge(Vertex v) const;

  /// Weight of the parent edge (0 for the root).
  [[nodiscard]] double parent_weight(Vertex v) const;

  /// Hop depth (root = 0).
  [[nodiscard]] Index depth(Vertex v) const;

  /// Σ 1/w along the v → root path.
  [[nodiscard]] double resistance_to_root(Vertex v) const;

  /// Vertices in BFS order from the root (root first). Every vertex appears
  /// after its parent — the order used by the O(n) tree solver.
  [[nodiscard]] std::span<const Vertex> bfs_order() const { return order_; }

  /// Flat parent array indexed by vertex (kInvalidVertex at the root) —
  /// the raw form the blocked tree-solve kernels consume.
  [[nodiscard]] std::span<const Vertex> parents() const { return parent_; }

  /// Flat parent-edge-weight array indexed by vertex (0 at the root).
  [[nodiscard]] std::span<const double> parent_weights() const {
    return parent_w_;
  }

  /// Flat parent-edge-id array indexed by vertex (kInvalidEdge at the
  /// root) — the raw form the stretch walks consume.
  [[nodiscard]] std::span<const EdgeId> parent_edges() const {
    return parent_eid_;
  }

  /// Flat hop-depth array indexed by vertex (0 at the root).
  [[nodiscard]] std::span<const Index> depths() const { return depth_; }

  /// The tree as a standalone (finalized) graph on the same vertex set.
  [[nodiscard]] Graph as_graph() const;

 private:
  const Graph* g_;
  std::vector<EdgeId> tree_edges_;
  std::vector<char> in_tree_;  // indexed by graph edge id
  Vertex root_;
  std::vector<Vertex> parent_;
  std::vector<EdgeId> parent_eid_;
  std::vector<double> parent_w_;
  std::vector<Index> depth_;
  std::vector<double> res_to_root_;
  std::vector<Vertex> order_;
};

}  // namespace ssp
