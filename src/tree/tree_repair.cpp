#include "tree/tree_repair.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "util/assert.hpp"
#include "util/union_find.hpp"

namespace ssp {

MaxWeightTree::MaxWeightTree(const Graph& g, std::span<const EdgeId> tree_edges)
    : g_(&g),
      in_tree_(static_cast<std::size_t>(g.num_edges()), 0),
      adj_(static_cast<std::size_t>(g.num_vertices())) {
  SSP_REQUIRE(static_cast<Vertex>(tree_edges.size()) == g.num_vertices() - 1,
              "MaxWeightTree: need exactly n-1 tree edges");
  for (const EdgeId e : tree_edges) {
    SSP_REQUIRE(e >= 0 && e < g.num_edges(),
                "MaxWeightTree: tree edge id out of range");
    link(e);
  }
  queue_.reserve(static_cast<std::size_t>(g.num_vertices()));
  parent_edge_.assign(static_cast<std::size_t>(g.num_vertices()),
                      kInvalidEdge);
  visited_.assign(static_cast<std::size_t>(g.num_vertices()), 0);
}

bool MaxWeightTree::beats(EdgeId a, EdgeId b) const {
  const double wa = g_->edge(a).weight;
  const double wb = g_->edge(b).weight;
  return wa != wb ? wa > wb : a < b;
}

void MaxWeightTree::link(EdgeId e) {
  SSP_ASSERT(in_tree_[static_cast<std::size_t>(e)] == 0,
             "MaxWeightTree: edge already linked");
  const Edge& edge = g_->edge(e);
  in_tree_[static_cast<std::size_t>(e)] = 1;
  adj_[static_cast<std::size_t>(edge.u)].push_back({edge.v, e});
  adj_[static_cast<std::size_t>(edge.v)].push_back({edge.u, e});
}

void MaxWeightTree::unlink(EdgeId e) {
  SSP_ASSERT(in_tree_[static_cast<std::size_t>(e)] != 0,
             "MaxWeightTree: edge not linked");
  const Edge& edge = g_->edge(e);
  in_tree_[static_cast<std::size_t>(e)] = 0;
  for (const Vertex end : {edge.u, edge.v}) {
    auto& list = adj_[static_cast<std::size_t>(end)];
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i].edge == e) {
        list[i] = list.back();
        list.pop_back();
        break;
      }
    }
  }
}

void MaxWeightTree::tree_path(Vertex u, Vertex v,
                              std::vector<EdgeId>& path) const {
  std::fill(visited_.begin(), visited_.end(), 0);
  queue_.clear();
  queue_.push_back(u);
  visited_[static_cast<std::size_t>(u)] = 1;
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const Vertex x = queue_[head];
    if (x == v) break;
    for (const HalfEdge& h : adj_[static_cast<std::size_t>(x)]) {
      if (visited_[static_cast<std::size_t>(h.to)] != 0) continue;
      visited_[static_cast<std::size_t>(h.to)] = 1;
      parent_edge_[static_cast<std::size_t>(h.to)] = h.edge;
      queue_.push_back(h.to);
    }
  }
  SSP_ASSERT(visited_[static_cast<std::size_t>(v)] != 0,
             "MaxWeightTree: endpoints not tree-connected");
  path.clear();
  for (Vertex x = v; x != u;) {
    const EdgeId e = parent_edge_[static_cast<std::size_t>(x)];
    path.push_back(e);
    const Edge& edge = g_->edge(e);  // parent = the edge's other endpoint
    x = edge.u == x ? edge.v : edge.u;
  }
}

void MaxWeightTree::mark_side(Vertex u, EdgeId cut,
                              std::vector<char>& side) const {
  side.assign(static_cast<std::size_t>(g_->num_vertices()), 0);
  queue_.clear();
  queue_.push_back(u);
  side[static_cast<std::size_t>(u)] = 1;
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const Vertex x = queue_[head];
    for (const HalfEdge& h : adj_[static_cast<std::size_t>(x)]) {
      if (h.edge == cut || side[static_cast<std::size_t>(h.to)] != 0) continue;
      side[static_cast<std::size_t>(h.to)] = 1;
      queue_.push_back(h.to);
    }
  }
}

bool MaxWeightTree::after_insert(EdgeId e) {
  SSP_REQUIRE(e >= 0 && e < g_->num_edges(),
              "MaxWeightTree: edge id out of range");
  in_tree_.resize(static_cast<std::size_t>(g_->num_edges()), 0);
  const Edge& edge = g_->edge(e);
  tree_path(edge.u, edge.v, path_);
  const std::vector<EdgeId>& path = path_;
  EdgeId weakest = path.front();
  for (const EdgeId p : path) {
    if (beats(weakest, p)) weakest = p;
  }
  if (!beats(e, weakest)) return false;
  unlink(weakest);
  link(e);
  return true;
}

bool MaxWeightTree::after_reweight(EdgeId e, double old_weight) {
  SSP_REQUIRE(e >= 0 && e < g_->num_edges(),
              "MaxWeightTree: edge id out of range");
  const Edge& edge = g_->edge(e);
  if (contains(e)) {
    // A tree edge that got heavier only gets safer; a lighter one may be
    // displaced by the strongest off-tree edge across its cut.
    if (edge.weight >= old_weight) return false;
    mark_side(edge.u, e, side_);
    EdgeId best = kInvalidEdge;
    for (EdgeId x = 0; x < g_->num_edges(); ++x) {
      if (x == e || contains(x)) continue;
      const Edge& cand = g_->edge(x);
      if (side_[static_cast<std::size_t>(cand.u)] ==
          side_[static_cast<std::size_t>(cand.v)]) {
        continue;
      }
      if (best == kInvalidEdge || beats(x, best)) best = x;
    }
    if (best == kInvalidEdge || !beats(best, e)) return false;
    unlink(e);
    link(best);
    return true;
  }
  // An off-tree edge that got lighter stays out; a heavier one is exactly
  // an insertion exchange.
  if (edge.weight <= old_weight) return false;
  return after_insert(e);
}

EdgeId MaxWeightTree::after_deletions(std::span<const char> deleted) {
  SSP_REQUIRE(static_cast<EdgeId>(deleted.size()) == g_->num_edges(),
              "MaxWeightTree: deletion mask must cover every edge id");
  EdgeId dropped = 0;
  for (EdgeId e = 0; e < g_->num_edges(); ++e) {
    if (deleted[static_cast<std::size_t>(e)] != 0 && contains(e)) ++dropped;
  }
  if (dropped == 0) return 0;

  // Reject disconnecting deletions before touching the tree, so the
  // documented throw leaves the index fully usable (one union-find pass
  // over the surviving edges).
  {
    UnionFind check(static_cast<Index>(g_->num_vertices()));
    for (EdgeId e = 0; e < g_->num_edges(); ++e) {
      if (deleted[static_cast<std::size_t>(e)] != 0) continue;
      const Edge& edge = g_->edge(e);
      check.unite(static_cast<Index>(edge.u), static_cast<Index>(edge.v));
    }
    SSP_REQUIRE(check.num_sets() == 1,
                "MaxWeightTree: deletions disconnect the graph");
  }
  for (EdgeId e = 0; e < g_->num_edges(); ++e) {
    if (deleted[static_cast<std::size_t>(e)] != 0 && contains(e)) unlink(e);
  }

  // Surviving tree edges stay in the canonical tree (each is the
  // strongest edge across its own cut, and deletions only remove
  // competitors), so reconnecting the contracted components greedily by
  // key reproduces the cold Kruskal tree exactly.
  UnionFind uf(static_cast<Index>(g_->num_vertices()));
  for (EdgeId e = 0; e < g_->num_edges(); ++e) {
    if (contains(e)) {
      const Edge& edge = g_->edge(e);
      uf.unite(static_cast<Index>(edge.u), static_cast<Index>(edge.v));
    }
  }
  // Strongest candidate per component pair (pairs only merge during the
  // greedy join, and the merged pair's best is one of its halves' bests).
  std::map<std::pair<Index, Index>, EdgeId> best;
  for (EdgeId x = 0; x < g_->num_edges(); ++x) {
    if (deleted[static_cast<std::size_t>(x)] != 0 || contains(x)) continue;
    const Edge& cand = g_->edge(x);
    const Index ru = uf.find(static_cast<Index>(cand.u));
    const Index rv = uf.find(static_cast<Index>(cand.v));
    if (ru == rv) continue;
    const std::pair<Index, Index> key{std::min(ru, rv), std::max(ru, rv)};
    const auto [it, inserted] = best.try_emplace(key, x);
    if (!inserted && beats(x, it->second)) it->second = x;
  }
  std::vector<EdgeId> candidates;
  candidates.reserve(best.size());
  for (const auto& [pair, x] : best) candidates.push_back(x);
  std::sort(candidates.begin(), candidates.end(),
            [this](EdgeId a, EdgeId b) { return beats(a, b); });
  EdgeId swaps = 0;
  for (const EdgeId x : candidates) {
    const Edge& cand = g_->edge(x);
    if (uf.unite(static_cast<Index>(cand.u), static_cast<Index>(cand.v))) {
      link(x);
      ++swaps;
    }
  }
  SSP_ASSERT(uf.num_sets() == 1,
             "MaxWeightTree: reconnection left components unjoined");
  return swaps;
}

void MaxWeightTree::remap_ids(std::span<const EdgeId> old_to_new) {
  std::vector<char> remapped(static_cast<std::size_t>(g_->num_edges()), 0);
  for (auto& list : adj_) {
    for (HalfEdge& h : list) {
      const EdgeId mapped = old_to_new[static_cast<std::size_t>(h.edge)];
      SSP_REQUIRE(mapped != kInvalidEdge,
                  "MaxWeightTree: a deleted edge is still in the tree");
      h.edge = mapped;
      remapped[static_cast<std::size_t>(mapped)] = 1;
    }
  }
  in_tree_ = std::move(remapped);
}

std::vector<EdgeId> MaxWeightTree::canonical_edge_ids() const {
  std::vector<EdgeId> ids;
  ids.reserve(static_cast<std::size_t>(g_->num_vertices()) - 1);
  for (EdgeId e = 0; e < static_cast<EdgeId>(in_tree_.size()); ++e) {
    if (in_tree_[static_cast<std::size_t>(e)] != 0) ids.push_back(e);
  }
  std::sort(ids.begin(), ids.end(),
            [this](EdgeId a, EdgeId b) { return beats(a, b); });
  return ids;
}

}  // namespace ssp
