#include "tree/tree_repair.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "util/assert.hpp"
#include "util/union_find.hpp"

namespace ssp {

MaxWeightTree::MaxWeightTree(const Graph& g, std::span<const EdgeId> tree_edges)
    : g_(&g),
      in_tree_(static_cast<std::size_t>(g.num_edges()), 0),
      adj_(static_cast<std::size_t>(g.num_vertices())) {
  SSP_REQUIRE(static_cast<Vertex>(tree_edges.size()) == g.num_vertices() - 1,
              "MaxWeightTree: need exactly n-1 tree edges");
  for (const EdgeId e : tree_edges) {
    SSP_REQUIRE(e >= 0 && e < g.num_edges(),
                "MaxWeightTree: tree edge id out of range");
    link(e);
  }
  queue_.reserve(static_cast<std::size_t>(g.num_vertices()));
  queue2_.reserve(static_cast<std::size_t>(g.num_vertices()));
  stamp_.assign(static_cast<std::size_t>(g.num_vertices()), 0);
  rebuild_rooted();

  // Seed the canonical acceptance order with one flat-key sort; every
  // later batch patches it via the canon_touched_ merge instead.
  std::vector<std::pair<double, EdgeId>> keys;
  keys.reserve(tree_edges.size());
  for (const EdgeId e : tree_edges) {
    keys.emplace_back(g.edge(e).weight, e);
  }
  std::sort(keys.begin(), keys.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  canon_.clear();
  canon_.reserve(keys.size());
  for (const auto& [w, e] : keys) canon_.push_back(e);
  canon_touched_.clear();
  edge_stamp_.assign(static_cast<std::size_t>(g.num_edges()), 0);
}

bool MaxWeightTree::beats(EdgeId a, EdgeId b) const {
  const double wa = g_->edge(a).weight;
  const double wb = g_->edge(b).weight;
  return wa != wb ? wa > wb : a < b;
}

void MaxWeightTree::link(EdgeId e) {
  SSP_ASSERT(in_tree_[static_cast<std::size_t>(e)] == 0,
             "MaxWeightTree: edge already linked");
  const Edge& edge = g_->edge(e);
  in_tree_[static_cast<std::size_t>(e)] = 1;
  adj_[static_cast<std::size_t>(edge.u)].push_back({edge.v, e});
  adj_[static_cast<std::size_t>(edge.v)].push_back({edge.u, e});
  canon_touch(e);
}

void MaxWeightTree::unlink(EdgeId e) {
  SSP_ASSERT(in_tree_[static_cast<std::size_t>(e)] != 0,
             "MaxWeightTree: edge not linked");
  const Edge& edge = g_->edge(e);
  in_tree_[static_cast<std::size_t>(e)] = 0;
  canon_touch(e);
  for (const Vertex end : {edge.u, edge.v}) {
    auto& list = adj_[static_cast<std::size_t>(end)];
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i].edge == e) {
        list[i] = list.back();
        list.pop_back();
        break;
      }
    }
  }
}

void MaxWeightTree::rebuild_rooted() {
  const auto n = static_cast<std::size_t>(g_->num_vertices());
  parent_.assign(n, kInvalidVertex);
  parent_eid_.assign(n, kInvalidEdge);
  const std::uint64_t ep = next_epoch();
  queue_.clear();
  queue_.push_back(0);
  stamp_[0] = ep;
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const Vertex x = queue_[head];
    for (const HalfEdge& h : adj_[static_cast<std::size_t>(x)]) {
      if (stamp_[static_cast<std::size_t>(h.to)] == ep) continue;
      stamp_[static_cast<std::size_t>(h.to)] = ep;
      parent_[static_cast<std::size_t>(h.to)] = x;
      parent_eid_[static_cast<std::size_t>(h.to)] = h.edge;
      queue_.push_back(h.to);
    }
  }
  SSP_ASSERT(queue_.size() == n, "MaxWeightTree: tree does not span the graph");
}

void MaxWeightTree::rehang(Vertex from, Vertex chain_end, Vertex attach_to,
                           EdgeId attach_edge) {
  Vertex cur = from;
  Vertex new_parent = attach_to;
  EdgeId new_eid = attach_edge;
  // Reverse the parent chain from → … → chain_end in one pass: `from`
  // hangs off attach_to via attach_edge, every chain vertex hangs off its
  // old child via the edge that used to point the other way, and
  // chain_end's old parent edge (the one the exchange removed) drops out.
  while (true) {
    const Vertex old_parent = parent_[static_cast<std::size_t>(cur)];
    const EdgeId old_eid = parent_eid_[static_cast<std::size_t>(cur)];
    parent_[static_cast<std::size_t>(cur)] = new_parent;
    parent_eid_[static_cast<std::size_t>(cur)] = new_eid;
    if (cur == chain_end) break;
    new_parent = cur;
    new_eid = old_eid;
    cur = old_parent;
  }
}

bool MaxWeightTree::root_path_uses(Vertex x, EdgeId via) const {
  for (Vertex c = x; parent_[static_cast<std::size_t>(c)] != kInvalidVertex;
       c = parent_[static_cast<std::size_t>(c)]) {
    if (parent_eid_[static_cast<std::size_t>(c)] == via) return true;
  }
  return false;
}

bool MaxWeightTree::after_insert(EdgeId e) {
  SSP_REQUIRE(e >= 0 && e < g_->num_edges(),
              "MaxWeightTree: edge id out of range");
  in_tree_.resize(static_cast<std::size_t>(g_->num_edges()), 0);
  const Edge& edge = g_->edge(e);

  // Locate the tree path u⇝v in O(path length): stamp u's root path with
  // a fresh epoch, then walk v upward until the first stamped vertex (the
  // meet — u's path above it is untouched by the exchange).
  const std::uint64_t ep = next_epoch();
  for (Vertex x = edge.u;;) {
    stamp_[static_cast<std::size_t>(x)] = ep;
    const Vertex p = parent_[static_cast<std::size_t>(x)];
    if (p == kInvalidVertex) break;
    x = p;
  }
  Vertex meet = edge.v;
  while (stamp_[static_cast<std::size_t>(meet)] != ep) {
    const Vertex p = parent_[static_cast<std::size_t>(meet)];
    SSP_ASSERT(p != kInvalidVertex,
               "MaxWeightTree: endpoints not tree-connected");
    meet = p;
  }

  // Weakest edge on the path, remembering which leg holds it and its
  // child-side vertex (the rehang chain end).
  EdgeId weakest = kInvalidEdge;
  Vertex weakest_child = kInvalidVertex;
  bool weakest_on_u_leg = false;
  for (Vertex x = edge.u; x != meet;
       x = parent_[static_cast<std::size_t>(x)]) {
    const EdgeId pe = parent_eid_[static_cast<std::size_t>(x)];
    if (weakest == kInvalidEdge || beats(weakest, pe)) {
      weakest = pe;
      weakest_child = x;
      weakest_on_u_leg = true;
    }
  }
  for (Vertex x = edge.v; x != meet;
       x = parent_[static_cast<std::size_t>(x)]) {
    const EdgeId pe = parent_eid_[static_cast<std::size_t>(x)];
    if (weakest == kInvalidEdge || beats(weakest, pe)) {
      weakest = pe;
      weakest_child = x;
      weakest_on_u_leg = false;
    }
  }
  SSP_ASSERT(weakest != kInvalidEdge,
             "MaxWeightTree: insert endpoints coincide");
  if (!beats(e, weakest)) return false;

  dirty_edges_.push_back(weakest);  // swapped out of the previous tree
  unlink(weakest);
  link(e);
  // The component cut off by removing `weakest` contains the endpoint of
  // `e` on the same leg; re-root it onto the other endpoint via `e`.
  const Vertex start = weakest_on_u_leg ? edge.u : edge.v;
  const Vertex attach = weakest_on_u_leg ? edge.v : edge.u;
  rehang(start, weakest_child, attach, e);
  return true;
}

bool MaxWeightTree::after_reweight(EdgeId e, double old_weight) {
  SSP_REQUIRE(e >= 0 && e < g_->num_edges(),
              "MaxWeightTree: edge id out of range");
  const Edge& edge = g_->edge(e);
  if (contains(e)) {
    // Every path through a reweighted tree edge changed resistance —
    // record the edge whether or not an exchange follows. The new key
    // also moves it in the canonical order.
    dirty_edges_.push_back(e);
    canon_touch(e);
    // A tree edge that got heavier only gets safer; a lighter one may be
    // displaced by the strongest off-tree edge across its cut.
    if (edge.weight >= old_weight) return false;
    SSP_REQUIRE(g_->finalized(),
                "MaxWeightTree: after_reweight requires a finalized graph");

    // Enumerate the smaller side of the cut T − e with an alternating
    // two-sided BFS (cost 2·|smaller side| tree work), then find the
    // strongest crossing edge by scanning only that side's incident graph
    // edges. An edge crosses iff its far endpoint is not stamped with the
    // side's epoch — the smaller side is fully enumerated, so the test is
    // exact even though the larger side's stamps are partial.
    const std::uint64_t eu = next_epoch();
    const std::uint64_t ev = next_epoch();
    queue_.clear();
    queue2_.clear();
    stamp_[static_cast<std::size_t>(edge.u)] = eu;
    queue_.push_back(edge.u);
    stamp_[static_cast<std::size_t>(edge.v)] = ev;
    queue2_.push_back(edge.v);
    std::size_t hu = 0;
    std::size_t hv = 0;
    bool u_smaller = false;
    while (true) {
      if (hu == queue_.size()) {
        u_smaller = true;
        break;
      }
      {
        const Vertex x = queue_[hu++];
        for (const HalfEdge& h : adj_[static_cast<std::size_t>(x)]) {
          if (h.edge == e || stamp_[static_cast<std::size_t>(h.to)] == eu) {
            continue;
          }
          stamp_[static_cast<std::size_t>(h.to)] = eu;
          queue_.push_back(h.to);
        }
      }
      if (hv == queue2_.size()) {
        u_smaller = false;
        break;
      }
      {
        const Vertex x = queue2_[hv++];
        for (const HalfEdge& h : adj_[static_cast<std::size_t>(x)]) {
          if (h.edge == e || stamp_[static_cast<std::size_t>(h.to)] == ev) {
            continue;
          }
          stamp_[static_cast<std::size_t>(h.to)] = ev;
          queue2_.push_back(h.to);
        }
      }
    }
    const std::vector<Vertex>& side = u_smaller ? queue_ : queue2_;
    const std::uint64_t side_epoch = u_smaller ? eu : ev;
    EdgeId best = kInvalidEdge;
    for (const Vertex x : side) {
      for (const auto item : g_->neighbors(x)) {
        const EdgeId y = item.edge;
        if (y == e || contains(y)) continue;
        if (stamp_[static_cast<std::size_t>(item.neighbor)] == side_epoch) {
          continue;  // both endpoints inside the side
        }
        if (best == kInvalidEdge || beats(y, best)) best = y;
      }
    }
    if (best == kInvalidEdge || !beats(best, e)) return false;

    // Re-root the component below e (its child endpoint's side) onto the
    // replacement. The replacement endpoint inside that component is the
    // one whose root path still traverses e.
    const Vertex child =
        parent_eid_[static_cast<std::size_t>(edge.u)] == e ? edge.u : edge.v;
    SSP_ASSERT(parent_eid_[static_cast<std::size_t>(child)] == e,
               "MaxWeightTree: tree edge not in rooted view");
    const Edge& rep = g_->edge(best);
    const bool rep_u_below = root_path_uses(rep.u, e);
    SSP_ASSERT(rep_u_below || root_path_uses(rep.v, e),
               "MaxWeightTree: replacement does not cross the cut");
    const Vertex start = rep_u_below ? rep.u : rep.v;
    const Vertex attach = rep_u_below ? rep.v : rep.u;
    unlink(e);
    link(best);
    rehang(start, child, attach, best);
    return true;
  }
  // An off-tree edge that got lighter stays out; a heavier one is exactly
  // an insertion exchange.
  if (edge.weight <= old_weight) return false;
  return after_insert(e);
}

EdgeId MaxWeightTree::after_deletions(std::span<const char> deleted) {
  SSP_REQUIRE(static_cast<EdgeId>(deleted.size()) == g_->num_edges(),
              "MaxWeightTree: deletion mask must cover every edge id");
  std::vector<EdgeId> dropped;
  for (EdgeId e = 0; e < g_->num_edges(); ++e) {
    if (deleted[static_cast<std::size_t>(e)] != 0 && contains(e)) {
      dropped.push_back(e);
    }
  }
  if (dropped.empty()) return 0;

  // Surviving tree edges stay in the canonical tree (each is the
  // strongest edge across its own cut, and deletions only remove
  // competitors), so reconnecting the contracted components greedily by
  // key reproduces the cold Kruskal tree exactly. Components come from
  // one O(n) union over the surviving tree adjacency — not an O(m)
  // sweep of the graph.
  UnionFind uf(static_cast<Index>(g_->num_vertices()));
  for (std::size_t v = 0; v < adj_.size(); ++v) {
    for (const HalfEdge& h : adj_[v]) {
      if (static_cast<Vertex>(v) >= h.to) continue;  // each edge once
      if (deleted[static_cast<std::size_t>(h.edge)] != 0) continue;
      uf.unite(static_cast<Index>(v), static_cast<Index>(h.to));
    }
  }
  // Strongest candidate per component pair (pairs only merge during the
  // greedy join, and the merged pair's best is one of its halves' bests).
  // Each per-pair best is the *unique* maximum under the total order
  // key(e) = (weight desc, id asc), so the surviving candidate set is
  // independent of the scan/container order by construction. This single
  // O(m) scan doubles as the connectivity pre-check below.
  std::map<std::pair<Index, Index>, EdgeId> best;
  for (EdgeId x = 0; x < g_->num_edges(); ++x) {
    if (deleted[static_cast<std::size_t>(x)] != 0 || contains(x)) continue;
    const Edge& cand = g_->edge(x);
    const Index ru = uf.find(static_cast<Index>(cand.u));
    const Index rv = uf.find(static_cast<Index>(cand.v));
    if (ru == rv) continue;
    const std::pair<Index, Index> key{std::min(ru, rv), std::max(ru, rv)};
    const auto [it, inserted] = best.try_emplace(key, x);
    if (!inserted && beats(x, it->second)) it->second = x;
  }
  std::vector<EdgeId> candidates;
  candidates.reserve(best.size());
  for (const auto& [pair, x] : best) candidates.push_back(x);
  // Canonical greedy order: stable-sort by the same total order Kruskal
  // uses. With `beats` a strict total order (unique keys) every sort
  // agrees, but candidates from *different* component pairs carry
  // independent keys — stable_sort pins the tie topology to the input
  // order deterministically instead of leaning on sort-algorithm
  // behavior, matching kruskal.cpp's acceptance order exactly.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [this](EdgeId a, EdgeId b) { return beats(a, b); });
  // Run the greedy joins on the scratch union-find first: if the
  // components cannot be reconnected the deletions disconnect the graph,
  // and the documented throw must leave the tree untouched. (A candidate
  // crossing edge exists for every reconnectable pair, so reconnecting
  // the per-pair bests succeeds iff the surviving graph is connected.)
  std::vector<EdgeId> chosen;
  chosen.reserve(dropped.size());
  for (const EdgeId x : candidates) {
    const Edge& cand = g_->edge(x);
    if (uf.unite(static_cast<Index>(cand.u), static_cast<Index>(cand.v))) {
      chosen.push_back(x);
    }
  }
  SSP_REQUIRE(uf.num_sets() == 1,
              "MaxWeightTree: deletions disconnect the graph");
  for (const EdgeId e : dropped) {
    dirty_edges_.push_back(e);
    unlink(e);
  }
  for (const EdgeId x : chosen) link(x);
  // One wholesale O(n) re-rooting replaces per-swap chain surgery — the
  // batch already paid O(m) above.
  rebuild_rooted();
  return static_cast<EdgeId>(chosen.size());
}

void MaxWeightTree::remap_ids(std::span<const EdgeId> old_to_new) {
  std::vector<char> remapped(static_cast<std::size_t>(g_->num_edges()), 0);
  for (auto& list : adj_) {
    for (HalfEdge& h : list) {
      const EdgeId mapped = old_to_new[static_cast<std::size_t>(h.edge)];
      SSP_REQUIRE(mapped != kInvalidEdge,
                  "MaxWeightTree: a deleted edge is still in the tree");
      h.edge = mapped;
      remapped[static_cast<std::size_t>(mapped)] = 1;
    }
  }
  in_tree_ = std::move(remapped);
  for (std::size_t v = 0; v < parent_eid_.size(); ++v) {
    if (parent_eid_[v] == kInvalidEdge) continue;
    const EdgeId mapped = old_to_new[static_cast<std::size_t>(parent_eid_[v])];
    SSP_REQUIRE(mapped != kInvalidEdge,
                "MaxWeightTree: a deleted edge is still in the rooted view");
    parent_eid_[v] = mapped;
  }
  // Compaction preserves relative id order and never changes weights, so
  // the cached canonical order survives the renumbering; stale entries
  // for deleted edges (unlinked but not yet merged out) simply drop.
  std::size_t out = 0;
  for (const EdgeId e : canon_) {
    const EdgeId mapped = old_to_new[static_cast<std::size_t>(e)];
    if (mapped != kInvalidEdge) canon_[out++] = mapped;
  }
  canon_.resize(out);
  out = 0;
  for (const EdgeId e : canon_touched_) {
    const EdgeId mapped = old_to_new[static_cast<std::size_t>(e)];
    if (mapped != kInvalidEdge) canon_touched_[out++] = mapped;
  }
  canon_touched_.resize(out);
  edge_stamp_.resize(static_cast<std::size_t>(g_->num_edges()), 0);
}

std::span<const EdgeId> MaxWeightTree::canonical_edge_ids() {
  if (canon_touched_.empty()) return canon_;
  // Fold the batch's changed ids into the cached order: drop every
  // touched id from the old list, then merge the currently-in-tree
  // touched ids back at their (possibly new) positions. O(n) plus
  // O(k log k) for the k touched ids — no full re-sort.
  std::sort(canon_touched_.begin(), canon_touched_.end());
  canon_touched_.erase(
      std::unique(canon_touched_.begin(), canon_touched_.end()),
      canon_touched_.end());
  edge_stamp_.resize(static_cast<std::size_t>(g_->num_edges()), 0);
  const std::uint64_t ep = next_epoch();
  std::vector<EdgeId> add;
  add.reserve(canon_touched_.size());
  for (const EdgeId e : canon_touched_) {
    edge_stamp_[static_cast<std::size_t>(e)] = ep;
    if (in_tree_[static_cast<std::size_t>(e)] != 0) add.push_back(e);
  }
  std::sort(add.begin(), add.end(),
            [this](EdgeId a, EdgeId b) { return beats(a, b); });
  std::vector<EdgeId> merged;
  merged.reserve(static_cast<std::size_t>(g_->num_vertices()) - 1);
  std::size_t j = 0;
  for (const EdgeId e : canon_) {
    if (edge_stamp_[static_cast<std::size_t>(e)] == ep) continue;  // dropped
    while (j < add.size() && beats(add[j], e)) merged.push_back(add[j++]);
    merged.push_back(e);
  }
  while (j < add.size()) merged.push_back(add[j++]);
  canon_ = std::move(merged);
  canon_touched_.clear();
  SSP_ASSERT(static_cast<Vertex>(canon_.size()) == g_->num_vertices() - 1,
             "MaxWeightTree: canonical order lost a tree edge");
  return canon_;
}

}  // namespace ssp
