#pragma once

/// \file tree_solver.hpp
/// Exact O(n) solver for spanning-tree Laplacian systems L_T x = b.
///
/// This is the workhorse behind (i) the generalized power iterations of the
/// spectral embedding when the sparsifier is still a bare tree, and (ii)
/// the spanning-tree preconditioner used inside PCG once the sparsifier has
/// been densified (the tree stays a subgraph of P, see DESIGN.md §5).
///
/// Algorithm: with the tree rooted, the current on the edge (v, parent(v))
/// must equal the total injection Σ b over v's subtree; a leaf-to-root pass
/// accumulates those flows, a root-to-leaf pass integrates potentials
/// x_v = x_parent + flow_v / w_v. The right-hand side is first projected to
/// zero mean (Laplacian range), and the output is returned with zero mean
/// (pseudoinverse convention).

#include <span>

#include "la/vector_ops.hpp"
#include "tree/spanning_tree.hpp"

namespace ssp {

class TreeSolver {
 public:
  /// Captures the rooted structure of `t` (which must outlive the solver).
  explicit TreeSolver(const SpanningTree& t);

  /// x := L_T⁺ b (exact up to rounding). Sizes must equal n.
  ///
  /// Re-entrant: safe to call concurrently from several threads on the
  /// same solver (the flow scratch lives in thread-local storage, reused
  /// across solves on each thread). This is what lets one TreeSolver back
  /// every per-probe PCG solve of the parallel embedding loop.
  void solve(std::span<const double> b, std::span<double> x) const;

  /// Allocating convenience overload.
  [[nodiscard]] Vec solve(std::span<const double> b) const;

  /// Blocked multi-RHS solve: X := L_T⁺ B for row-major n×r panels
  /// (`b.size() == x.size() == n*r`; row = vertex, the r RHS values of a
  /// vertex contiguous). One leaf-to-root and one root-to-leaf traversal
  /// serve all r right-hand sides — the tree walk (order/parent/weight
  /// traffic) is amortized r times versus r calls to `solve` — and each
  /// panel column is bit-identical to the corresponding `solve` call, for
  /// every kernel backend. Re-entrant like `solve` (thread-local panel
  /// scratch).
  void solve_multi(std::span<const double> b, std::span<double> x,
                   Index r) const;

  [[nodiscard]] Vertex num_vertices() const { return t_->num_vertices(); }

 private:
  const SpanningTree* t_;
};

}  // namespace ssp
