#include "tree/spanning_tree.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ssp {

SpanningTree::SpanningTree(const Graph& g, std::vector<EdgeId> tree_edges,
                           Vertex root)
    : g_(&g), tree_edges_(std::move(tree_edges)), root_(root) {
  SSP_REQUIRE(g.finalized(), "SpanningTree: graph must be finalized");
  const Vertex n = g.num_vertices();
  SSP_REQUIRE(n >= 1, "SpanningTree: empty graph");
  SSP_REQUIRE(root >= 0 && root < n, "SpanningTree: root out of range");
  SSP_REQUIRE(static_cast<Vertex>(tree_edges_.size()) == n - 1,
              "SpanningTree: need exactly n-1 edges");

  in_tree_.assign(static_cast<std::size_t>(g.num_edges()), 0);
  for (EdgeId e : tree_edges_) {
    SSP_REQUIRE(e >= 0 && e < g.num_edges(), "SpanningTree: bad edge id");
    SSP_REQUIRE(in_tree_[static_cast<std::size_t>(e)] == 0,
                "SpanningTree: duplicate tree edge");
    in_tree_[static_cast<std::size_t>(e)] = 1;
  }

  parent_.assign(static_cast<std::size_t>(n), kInvalidVertex);
  parent_eid_.assign(static_cast<std::size_t>(n), kInvalidEdge);
  parent_w_.assign(static_cast<std::size_t>(n), 0.0);
  depth_.assign(static_cast<std::size_t>(n), 0);
  res_to_root_.assign(static_cast<std::size_t>(n), 0.0);
  order_.clear();
  order_.reserve(static_cast<std::size_t>(n));

  // BFS from the root over a counting-sorted tree adjacency built from
  // the n−1 tree edges alone — O(n), independent of the graph's edge
  // count (scanning full graph adjacency is O(m) and hub-heavy graphs
  // made that the dominant construction cost). A vertex is reached by
  // exactly one tree path, so the parent/depth/resistance arrays do not
  // depend on the visit order; only `order_` reflects it.
  std::vector<Index> tree_ptr(static_cast<std::size_t>(n) + 1, 0);
  for (const EdgeId e : tree_edges_) {
    const Edge& edge = g.edge(e);
    ++tree_ptr[static_cast<std::size_t>(edge.u) + 1];
    ++tree_ptr[static_cast<std::size_t>(edge.v) + 1];
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i) {
    tree_ptr[i + 1] += tree_ptr[i];
  }
  std::vector<Vertex> tree_nbr(tree_edges_.size() * 2);
  std::vector<EdgeId> tree_eid(tree_edges_.size() * 2);
  std::vector<Index> slot(tree_ptr.begin(), tree_ptr.end() - 1);
  for (const EdgeId e : tree_edges_) {
    const Edge& edge = g.edge(e);
    auto put = [&](Vertex from, Vertex to) {
      const auto pos = static_cast<std::size_t>(
          slot[static_cast<std::size_t>(from)]++);
      tree_nbr[pos] = to;
      tree_eid[pos] = e;
    };
    put(edge.u, edge.v);
    put(edge.v, edge.u);
  }

  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  visited[static_cast<std::size_t>(root_)] = 1;
  order_.push_back(root_);
  for (std::size_t head = 0; head < order_.size(); ++head) {
    const Vertex v = order_[head];
    const auto b = static_cast<std::size_t>(tree_ptr[static_cast<std::size_t>(v)]);
    const auto lim =
        static_cast<std::size_t>(tree_ptr[static_cast<std::size_t>(v) + 1]);
    for (std::size_t pos = b; pos < lim; ++pos) {
      const Vertex u = tree_nbr[pos];
      if (visited[static_cast<std::size_t>(u)] != 0) continue;
      const EdgeId e = tree_eid[pos];
      const double w = g.edge(e).weight;
      visited[static_cast<std::size_t>(u)] = 1;
      parent_[static_cast<std::size_t>(u)] = v;
      parent_eid_[static_cast<std::size_t>(u)] = e;
      parent_w_[static_cast<std::size_t>(u)] = w;
      depth_[static_cast<std::size_t>(u)] =
          depth_[static_cast<std::size_t>(v)] + 1;
      res_to_root_[static_cast<std::size_t>(u)] =
          res_to_root_[static_cast<std::size_t>(v)] + 1.0 / w;
      order_.push_back(u);
    }
  }
  SSP_REQUIRE(static_cast<Vertex>(order_.size()) == n,
              "SpanningTree: edges do not span the graph");
}

bool SpanningTree::contains(EdgeId e) const {
  SSP_REQUIRE(e >= 0 && e < g_->num_edges(), "edge id out of range");
  return in_tree_[static_cast<std::size_t>(e)] != 0;
}

std::vector<EdgeId> SpanningTree::offtree_edge_ids() const {
  std::vector<EdgeId> out;
  out.reserve(static_cast<std::size_t>(num_offtree_edges()));
  for (EdgeId e = 0; e < g_->num_edges(); ++e) {
    if (in_tree_[static_cast<std::size_t>(e)] == 0) out.push_back(e);
  }
  return out;
}

Vertex SpanningTree::parent(Vertex v) const {
  SSP_REQUIRE(v >= 0 && v < num_vertices(), "vertex out of range");
  return parent_[static_cast<std::size_t>(v)];
}

EdgeId SpanningTree::parent_edge(Vertex v) const {
  SSP_REQUIRE(v >= 0 && v < num_vertices(), "vertex out of range");
  return parent_eid_[static_cast<std::size_t>(v)];
}

double SpanningTree::parent_weight(Vertex v) const {
  SSP_REQUIRE(v >= 0 && v < num_vertices(), "vertex out of range");
  return parent_w_[static_cast<std::size_t>(v)];
}

Index SpanningTree::depth(Vertex v) const {
  SSP_REQUIRE(v >= 0 && v < num_vertices(), "vertex out of range");
  return depth_[static_cast<std::size_t>(v)];
}

double SpanningTree::resistance_to_root(Vertex v) const {
  SSP_REQUIRE(v >= 0 && v < num_vertices(), "vertex out of range");
  return res_to_root_[static_cast<std::size_t>(v)];
}

Graph SpanningTree::as_graph() const { return g_->edge_subgraph(tree_edges_); }

}  // namespace ssp
