#pragma once

/// \file lca.hpp
/// Binary-lifting lowest-common-ancestor index over a rooted spanning tree.
/// Construction O(n log n), queries O(log n).
///
/// The LCA turns root-path resistances into tree effective resistances,
///   R_T(u, v) = r(u) + r(v) − 2 r(lca(u, v)),
/// which the stretch computation (tree/stretch.hpp) and the
/// Spielman–Srivastava baseline (core/resistance_sampling.hpp) consume.

#include <vector>

#include "tree/spanning_tree.hpp"

namespace ssp {

class LcaIndex {
 public:
  /// Builds the lifting table for `t` (which must outlive this index).
  explicit LcaIndex(const SpanningTree& t);

  /// Lowest common ancestor of u and v.
  [[nodiscard]] Vertex lca(Vertex u, Vertex v) const;

  /// Tree effective resistance between u and v (sum of 1/w on the path).
  [[nodiscard]] double path_resistance(Vertex u, Vertex v) const;

  /// Stretch of graph edge `e`: w(e) · R_T(u, v). Equals 1 for tree edges.
  [[nodiscard]] double stretch(EdgeId e) const;

 private:
  const SpanningTree* t_;
  int levels_ = 1;
  // up_[k][v] = 2^k-th ancestor of v (root maps to itself).
  std::vector<std::vector<Vertex>> up_;
};

}  // namespace ssp
