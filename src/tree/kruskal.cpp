#include "tree/kruskal.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/assert.hpp"
#include "util/union_find.hpp"

namespace ssp {

namespace {

std::vector<EdgeId> kruskal_edges(const GraphView& g, bool maximize) {
  SSP_REQUIRE(g.num_vertices() >= 1, "kruskal: empty graph");
  std::vector<EdgeId> ids(static_cast<std::size_t>(g.num_edges()));
  std::iota(ids.begin(), ids.end(), EdgeId{0});
  std::stable_sort(ids.begin(), ids.end(), [&](EdgeId a, EdgeId b) {
    const double wa = g.edge(a).weight;
    const double wb = g.edge(b).weight;
    return maximize ? wa > wb : wa < wb;
  });

  UnionFind uf(g.num_vertices());
  std::vector<EdgeId> tree;
  tree.reserve(static_cast<std::size_t>(g.num_vertices()) - 1);
  for (EdgeId id : ids) {
    const Edge e = g.edge(id);
    if (uf.unite(e.u, e.v)) {
      tree.push_back(id);
      if (static_cast<Vertex>(tree.size()) == g.num_vertices() - 1) break;
    }
  }
  SSP_REQUIRE(static_cast<Vertex>(tree.size()) == g.num_vertices() - 1,
              "kruskal: graph is not connected");
  return tree;
}

}  // namespace

std::vector<EdgeId> max_weight_tree_edges(const GraphView& g) {
  return kruskal_edges(g, /*maximize=*/true);
}

SpanningTree max_weight_spanning_tree(const Graph& g, Vertex root) {
  return SpanningTree(g, kruskal_edges(g, /*maximize=*/true), root);
}

SpanningTree min_weight_spanning_tree(const Graph& g, Vertex root) {
  return SpanningTree(g, kruskal_edges(g, /*maximize=*/false), root);
}

}  // namespace ssp
