#include "tree/kruskal.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/assert.hpp"
#include "util/union_find.hpp"

namespace ssp {

namespace {

SpanningTree kruskal(const Graph& g, Vertex root, bool maximize) {
  SSP_REQUIRE(g.num_vertices() >= 1, "kruskal: empty graph");
  std::vector<EdgeId> ids(static_cast<std::size_t>(g.num_edges()));
  std::iota(ids.begin(), ids.end(), EdgeId{0});
  const auto edges = g.edges();
  std::stable_sort(ids.begin(), ids.end(), [&](EdgeId a, EdgeId b) {
    const double wa = edges[static_cast<std::size_t>(a)].weight;
    const double wb = edges[static_cast<std::size_t>(b)].weight;
    return maximize ? wa > wb : wa < wb;
  });

  UnionFind uf(g.num_vertices());
  std::vector<EdgeId> tree;
  tree.reserve(static_cast<std::size_t>(g.num_vertices()) - 1);
  for (EdgeId id : ids) {
    const Edge& e = edges[static_cast<std::size_t>(id)];
    if (uf.unite(e.u, e.v)) {
      tree.push_back(id);
      if (static_cast<Vertex>(tree.size()) == g.num_vertices() - 1) break;
    }
  }
  SSP_REQUIRE(static_cast<Vertex>(tree.size()) == g.num_vertices() - 1,
              "kruskal: graph is not connected");
  return SpanningTree(g, std::move(tree), root);
}

}  // namespace

SpanningTree max_weight_spanning_tree(const Graph& g, Vertex root) {
  return kruskal(g, root, /*maximize=*/true);
}

SpanningTree min_weight_spanning_tree(const Graph& g, Vertex root) {
  return kruskal(g, root, /*maximize=*/false);
}

}  // namespace ssp
