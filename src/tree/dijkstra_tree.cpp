#include "tree/dijkstra_tree.hpp"

#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace ssp {

SpanningTree shortest_path_tree(const Graph& g, Vertex source) {
  SSP_REQUIRE(g.finalized(), "shortest_path_tree: graph must be finalized");
  const Vertex n = g.num_vertices();
  SSP_REQUIRE(source >= 0 && source < n, "shortest_path_tree: bad source");

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(static_cast<std::size_t>(n), kInf);
  std::vector<EdgeId> via(static_cast<std::size_t>(n), kInvalidEdge);
  std::vector<char> done(static_cast<std::size_t>(n), 0);

  using Item = std::pair<double, Vertex>;  // (distance, vertex)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[static_cast<std::size_t>(source)] = 0.0;
  heap.emplace(0.0, source);

  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (done[static_cast<std::size_t>(v)] != 0) continue;
    done[static_cast<std::size_t>(v)] = 1;
    for (const auto item : g.neighbors(v)) {
      const double nd = d + 1.0 / item.weight;
      if (nd < dist[static_cast<std::size_t>(item.neighbor)]) {
        dist[static_cast<std::size_t>(item.neighbor)] = nd;
        via[static_cast<std::size_t>(item.neighbor)] = item.edge;
        heap.emplace(nd, item.neighbor);
      }
    }
  }

  std::vector<EdgeId> tree;
  tree.reserve(static_cast<std::size_t>(n) - 1);
  for (Vertex v = 0; v < n; ++v) {
    if (v == source) continue;
    SSP_REQUIRE(via[static_cast<std::size_t>(v)] != kInvalidEdge,
                "shortest_path_tree: graph is not connected");
    tree.push_back(via[static_cast<std::size_t>(v)]);
  }
  return SpanningTree(g, std::move(tree), source);
}

SpanningTree shortest_path_tree_from_center(const Graph& g) {
  SSP_REQUIRE(g.finalized() && g.num_vertices() >= 1,
              "shortest_path_tree_from_center: bad graph");
  Vertex best = 0;
  double best_deg = -1.0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const double d = g.weighted_degree(v);
    if (d > best_deg) {
      best_deg = d;
      best = v;
    }
  }
  return shortest_path_tree(g, best);
}

}  // namespace ssp
