#include "tree/lca.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace ssp {

LcaIndex::LcaIndex(const SpanningTree& t) : t_(&t) {
  const Vertex n = t.num_vertices();
  Index max_depth = 0;
  for (Vertex v = 0; v < n; ++v) max_depth = std::max(max_depth, t.depth(v));
  levels_ = 1;
  while ((Index{1} << levels_) <= max_depth) ++levels_;

  up_.assign(static_cast<std::size_t>(levels_),
             std::vector<Vertex>(static_cast<std::size_t>(n)));
  for (Vertex v = 0; v < n; ++v) {
    const Vertex p = t.parent(v);
    up_[0][static_cast<std::size_t>(v)] = (p == kInvalidVertex) ? v : p;
  }
  for (int k = 1; k < levels_; ++k) {
    for (Vertex v = 0; v < n; ++v) {
      up_[static_cast<std::size_t>(k)][static_cast<std::size_t>(v)] =
          up_[static_cast<std::size_t>(k) - 1][static_cast<std::size_t>(
              up_[static_cast<std::size_t>(k) - 1][static_cast<std::size_t>(v)])];
    }
  }
}

Vertex LcaIndex::lca(Vertex u, Vertex v) const {
  SSP_REQUIRE(u >= 0 && u < t_->num_vertices() && v >= 0 &&
                  v < t_->num_vertices(),
              "lca: vertex out of range");
  // Lift the deeper vertex to the same depth.
  if (t_->depth(u) < t_->depth(v)) std::swap(u, v);
  Index diff = t_->depth(u) - t_->depth(v);
  for (int k = 0; diff != 0; ++k, diff >>= 1) {
    if ((diff & 1) != 0) {
      u = up_[static_cast<std::size_t>(k)][static_cast<std::size_t>(u)];
    }
  }
  if (u == v) return u;
  for (int k = levels_ - 1; k >= 0; --k) {
    const Vertex au = up_[static_cast<std::size_t>(k)][static_cast<std::size_t>(u)];
    const Vertex av = up_[static_cast<std::size_t>(k)][static_cast<std::size_t>(v)];
    if (au != av) {
      u = au;
      v = av;
    }
  }
  return up_[0][static_cast<std::size_t>(u)];
}

double LcaIndex::path_resistance(Vertex u, Vertex v) const {
  const Vertex a = lca(u, v);
  return t_->resistance_to_root(u) + t_->resistance_to_root(v) -
         2.0 * t_->resistance_to_root(a);
}

double LcaIndex::stretch(EdgeId e) const {
  const Edge& edge = t_->graph().edge(e);
  return edge.weight * path_resistance(edge.u, edge.v);
}

}  // namespace ssp
