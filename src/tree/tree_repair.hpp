#pragma once

/// \file tree_repair.hpp
/// Incrementally maintained canonical maximum-weight spanning tree — the
/// persistent backbone of the dynamic update layer (src/dynamic/).
///
/// `max_weight_spanning_tree()` (tree/kruskal.cpp) is deterministic: edges
/// are stable-sorted by weight descending, so ties resolve by ascending
/// edge id and the accepted tree is the unique maximum spanning tree under
/// the total order key(e) = (weight desc, id asc). `MaxWeightTree`
/// maintains exactly that tree across edge insertions, deletions, and
/// reweights using the classic matroid exchange steps evaluated under the
/// same total order:
///
///  * insert e            — swap out the weakest edge on the tree path
///                          between e's endpoints iff e's key beats it;
///  * reweight e          — tree-edge decrease may swap in the strongest
///                          crossing replacement; off-tree increase is an
///                          insert-style exchange; the other two directions
///                          are provably no-ops;
///  * delete tree edges   — union-find over the surviving tree edges, then
///                          a greedy strongest-crossing-edge reconnection
///                          (exact by the cut property: deletions never
///                          evict surviving tree edges).
///
/// Because the keys are unique, the maintained tree is bit-identical to a
/// cold Kruskal rebuild on the updated graph — `canonical_edge_ids()`
/// returns the ids in Kruskal acceptance order, so even the backbone-first
/// prefix of a sparsifier edge list matches a cold run exactly. This is
/// the property the dynamic layer's incremental-equals-cold determinism
/// contract rests on (see dynamic/dynamic_sparsifier.hpp).
///
/// Costs per operation: O(n) for path exchanges, O(m) for cut scans
/// (tree-edge deletions / weight decreases), amortized over a batch. The
/// host graph must outlive the index and already reflect each mutation
/// when the corresponding `after_*` hook runs.

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/types.hpp"

namespace ssp {

class MaxWeightTree {
 public:
  /// Binds to `g` (must outlive the index) and adopts `tree_edges` — the
  /// edge ids of a spanning tree of `g`, typically
  /// `max_weight_spanning_tree(g).tree_edge_ids()`. The edges are trusted
  /// to form a spanning tree; canonical maximality is the caller's
  /// responsibility (adopt a Kruskal tree, then only mutate through the
  /// hooks below).
  MaxWeightTree(const Graph& g, std::span<const EdgeId> tree_edges);

  [[nodiscard]] const Graph& graph() const { return *g_; }

  /// True when graph edge `e` is currently a tree edge.
  [[nodiscard]] bool contains(EdgeId e) const {
    return in_tree_[static_cast<std::size_t>(e)] != 0;
  }

  /// Tree edge ids sorted by (weight desc, id asc) — exactly the order
  /// Kruskal accepts them in, so a SpanningTree built from this list is
  /// bit-identical to `max_weight_spanning_tree(graph())`.
  [[nodiscard]] std::vector<EdgeId> canonical_edge_ids() const;

  /// Exchange step after `e` was appended to the graph. Returns true when
  /// the tree changed (a path edge was swapped out for `e`).
  bool after_insert(EdgeId e);

  /// Exchange step after edge `e`'s weight changed from `old_weight` to
  /// its current value. Returns true when the tree changed.
  bool after_reweight(EdgeId e, double old_weight);

  /// Repairs the tree after the edges flagged in `deleted` (indexed by
  /// edge id) were marked for removal from the graph: drops deleted tree
  /// edges and reconnects the resulting components with the strongest
  /// non-deleted crossing edges (greedy by key — exact). Returns the
  /// number of replacement edges swapped in. Throws std::invalid_argument
  /// when the deletions disconnect the graph — checked before the tree is
  /// touched, so the index stays fully usable after a rejection. The
  /// graph's edge list must still contain the deleted edges (they are
  /// skipped via the mask); remove them afterwards and call
  /// `remap_ids()`.
  EdgeId after_deletions(std::span<const char> deleted);

  /// Renumbers edge ids after `Graph::remove_edges` compaction;
  /// `old_to_new` is the remap it returned. No deleted edge may still be
  /// in the tree (run `after_deletions` first).
  void remap_ids(std::span<const EdgeId> old_to_new);

 private:
  struct HalfEdge {
    Vertex to;
    EdgeId edge;
  };

  /// True when key(a) = (w_a, -a) beats key(b) in the canonical order.
  [[nodiscard]] bool beats(EdgeId a, EdgeId b) const;

  /// Fills `path` with the tree edges joining `u` and `v` (BFS, O(n)).
  void tree_path(Vertex u, Vertex v, std::vector<EdgeId>& path) const;

  /// Marks `side[x] = 1` for every vertex reachable from `u` without
  /// crossing tree edge `cut` (BFS, O(n)).
  void mark_side(Vertex u, EdgeId cut, std::vector<char>& side) const;

  void link(EdgeId e);
  void unlink(EdgeId e);

  const Graph* g_;
  std::vector<char> in_tree_;               ///< by edge id
  std::vector<std::vector<HalfEdge>> adj_;  ///< tree adjacency
  // Reused BFS / exchange scratch (no per-operation allocation).
  mutable std::vector<Vertex> queue_;
  mutable std::vector<EdgeId> parent_edge_;
  mutable std::vector<char> visited_;
  std::vector<EdgeId> path_;
  std::vector<char> side_;
};

}  // namespace ssp
