#pragma once

/// \file tree_repair.hpp
/// Incrementally maintained canonical maximum-weight spanning tree — the
/// persistent backbone of the dynamic update layer (src/dynamic/).
///
/// `max_weight_spanning_tree()` (tree/kruskal.cpp) is deterministic: edges
/// are stable-sorted by weight descending, so ties resolve by ascending
/// edge id and the accepted tree is the unique maximum spanning tree under
/// the total order key(e) = (weight desc, id asc). `MaxWeightTree`
/// maintains exactly that tree across edge insertions, deletions, and
/// reweights using the classic matroid exchange steps evaluated under the
/// same total order:
///
///  * insert e            — swap out the weakest edge on the tree path
///                          between e's endpoints iff e's key beats it;
///  * reweight e          — tree-edge decrease may swap in the strongest
///                          crossing replacement; off-tree increase is an
///                          insert-style exchange; the other two directions
///                          are provably no-ops;
///  * delete tree edges   — union-find over the surviving tree edges, then
///                          a greedy strongest-crossing-edge reconnection
///                          (exact by the cut property: deletions never
///                          evict surviving tree edges). The reconnection
///                          order is canonical: per-pair bests are unique
///                          maxima under the total order, and the greedy
///                          pass consumes them stable-sorted by that same
///                          order, so the repaired tree is independent of
///                          any container iteration order.
///
/// Because the keys are unique, the maintained tree is bit-identical to a
/// cold Kruskal rebuild on the updated graph — `canonical_edge_ids()`
/// returns the ids in Kruskal acceptance order, so even the backbone-first
/// prefix of a sparsifier edge list matches a cold run exactly. This is
/// the property the dynamic layer's incremental-equals-cold determinism
/// contract rests on (see dynamic/dynamic_sparsifier.hpp).
///
/// **Dirty-edge tracking.** Between `begin_batch()` calls the index
/// records every *previous-tree* edge whose weight changed or that left
/// the tree:
///
///  * tree-edge reweight (either direction, swap or not) — the edge
///    itself (every path through it changed resistance);
///  * exchange swap (insert or reweight) — the edge swapped *out*;
///  * batched deletion — each deleted tree edge.
///
/// `dirty_tree_edges()` exposes the recorded ids in pre-`remap_ids()`
/// numbering. They support an *exact* localized invalidation rule: the
/// final tree contains every previous-tree edge that is not recorded, so
/// a path between two vertices — and therefore any off-tree stretch
/// through it — changed iff its path in the PREVIOUS tree crossed a
/// recorded edge. Testing that takes one O(n) labelling pass over the
/// previous rooted backbone (dynamic/dynamic_sparsifier.cpp), with no
/// per-edge path walks and no over-approximation from reconnection
/// detours. Ids ≥ the previous edge count (same-batch inserts that were
/// swapped out again) can be skipped by that pass: they were never
/// previous-tree edges, and inserted edges are invalidated wholesale.
///
/// **Costs.** The index keeps a rooted parent-pointer view of the tree
/// (root 0) patched in place by every exchange, so path exchanges are
/// O(path length) with epoch-stamped walks — no per-operation O(n) BFS.
/// Tree-edge weight decreases locate the strongest crossing edge by
/// enumerating only the *smaller* side of the cut (alternating two-sided
/// BFS) and scanning its incident graph edges. Batched deletions pay one
/// fused O(m) candidate scan (which doubles as the connectivity
/// pre-check — the greedy reconnection is simulated on scratch
/// union-find state before the tree is touched) + an O(n)
/// rooted-structure rebuild. The canonical Kruskal acceptance order is
/// maintained incrementally: hooks log the ids whose key or membership
/// changed, and `canonical_edge_ids()` folds them in with one O(n) merge
/// instead of re-sorting n−1 ids per batch. The host graph must outlive
/// the index and already reflect each mutation when the corresponding
/// `after_*` hook runs; reweight hooks additionally require the graph to
/// be finalized (they scan graph adjacency), which the dynamic layer's
/// reweights-before-inserts apply order guarantees.

#include <span>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "util/types.hpp"

namespace ssp {

class MaxWeightTree {
 public:
  /// Binds to `g` (must outlive the index) and adopts `tree_edges` — the
  /// edge ids of a spanning tree of `g`, typically
  /// `max_weight_spanning_tree(g).tree_edge_ids()`. The edges are trusted
  /// to form a spanning tree; canonical maximality is the caller's
  /// responsibility (adopt a Kruskal tree, then only mutate through the
  /// hooks below).
  MaxWeightTree(const Graph& g, std::span<const EdgeId> tree_edges);

  [[nodiscard]] const Graph& graph() const { return *g_; }

  /// True when graph edge `e` is currently a tree edge.
  [[nodiscard]] bool contains(EdgeId e) const {
    return in_tree_[static_cast<std::size_t>(e)] != 0;
  }

  /// Tree edge ids sorted by (weight desc, id asc) — exactly the order
  /// Kruskal accepts them in, so a SpanningTree built from this list is
  /// bit-identical to `max_weight_spanning_tree(graph())`. Maintained
  /// incrementally: the call folds the batch's membership/key changes
  /// into the cached order with one O(n) merge (plus O(k log k) for the
  /// k changed ids) and returns a view valid until the next mutating
  /// call.
  [[nodiscard]] std::span<const EdgeId> canonical_edge_ids();

  /// Exchange step after `e` was appended to the graph. Returns true when
  /// the tree changed (a path edge was swapped out for `e`).
  bool after_insert(EdgeId e);

  /// Exchange step after edge `e`'s weight changed from `old_weight` to
  /// its current value. Returns true when the tree changed. Requires a
  /// finalized graph (crossing-edge scans use graph adjacency).
  bool after_reweight(EdgeId e, double old_weight);

  /// Repairs the tree after the edges flagged in `deleted` (indexed by
  /// edge id) were marked for removal from the graph: drops deleted tree
  /// edges and reconnects the resulting components with the strongest
  /// non-deleted crossing edges (greedy by key — exact). Returns the
  /// number of replacement edges swapped in. Throws std::invalid_argument
  /// when the deletions disconnect the graph — checked before the tree is
  /// touched, so the index stays fully usable after a rejection. The
  /// graph's edge list must still contain the deleted edges (they are
  /// skipped via the mask); remove them afterwards and call
  /// `remap_ids()`.
  EdgeId after_deletions(std::span<const char> deleted);

  /// Renumbers edge ids after `Graph::remove_edges` compaction;
  /// `old_to_new` is the remap it returned. No deleted edge may still be
  /// in the tree (run `after_deletions` first). Recorded dirty edge ids
  /// are deliberately NOT remapped — they identify previous-tree edges
  /// and stay in pre-compaction numbering (see the header comment).
  void remap_ids(std::span<const EdgeId> old_to_new);

  /// Starts a new dirty-tracking window: clears the recorded edge ids.
  void begin_batch() { dirty_edges_.clear(); }

  /// Previous-tree edges recorded since `begin_batch()` (reweighted tree
  /// edges, swapped-out edges, deleted tree edges) in pre-`remap_ids()`
  /// numbering — see the header comment for the exact invalidation rule
  /// they support. May contain duplicates and same-batch insert ids;
  /// order is the order changes were applied.
  [[nodiscard]] std::span<const EdgeId> dirty_tree_edges() const {
    return dirty_edges_;
  }

 private:
  struct HalfEdge {
    Vertex to;
    EdgeId edge;
  };

  /// True when key(a) = (w_a, -a) beats key(b) in the canonical order.
  [[nodiscard]] bool beats(EdgeId a, EdgeId b) const;

  void link(EdgeId e);
  void unlink(EdgeId e);

  /// Logs `e` as needing a canonical-order re-merge (membership or key
  /// changed since the last canonical_edge_ids() call).
  void canon_touch(EdgeId e) { canon_touched_.push_back(e); }

  /// Rebuilds parent_/parent_eid_ by BFS from the root over adj_ (O(n)).
  void rebuild_rooted();

  /// Fresh epoch for the stamp array (monotone, never reused).
  [[nodiscard]] std::uint64_t next_epoch() { return ++epoch_; }

  /// Reverses the parent chain from `from` up to `chain_end` (an ancestor
  /// of `from`), then attaches `from` to `attach_to` via edge
  /// `attach_edge` — the O(chain) re-rooting of the subtree detached by an
  /// exchange. `chain_end`'s old parent edge must already be unlinked.
  void rehang(Vertex from, Vertex chain_end, Vertex attach_to,
              EdgeId attach_edge);

  /// True when `x`'s root path (current parent pointers) traverses tree
  /// edge `via`.
  [[nodiscard]] bool root_path_uses(Vertex x, EdgeId via) const;

  const Graph* g_;
  std::vector<char> in_tree_;               ///< by edge id
  std::vector<std::vector<HalfEdge>> adj_;  ///< tree adjacency
  // Rooted view (root 0), patched in place by every exchange.
  std::vector<Vertex> parent_;
  std::vector<EdgeId> parent_eid_;
  // Epoch-stamped scratch: a fresh epoch per walk replaces O(n) clears.
  std::vector<std::uint64_t> stamp_;
  std::uint64_t epoch_ = 0;
  // Reused BFS / exchange scratch (no per-operation allocation).
  std::vector<Vertex> queue_;
  std::vector<Vertex> queue2_;
  std::vector<EdgeId> dirty_edges_;
  // Incrementally maintained canonical acceptance order + the ids whose
  // key or membership changed since the last merge (epoch-stamped by
  // edge id during the merge itself).
  std::vector<EdgeId> canon_;
  std::vector<EdgeId> canon_touched_;
  std::vector<std::uint64_t> edge_stamp_;
};

}  // namespace ssp
