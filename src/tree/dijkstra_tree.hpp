#pragma once

/// \file dijkstra_tree.hpp
/// Shortest-path tree with edge length 1/weight (electrical resistance).
/// An SPT from a high-degree center is a simple backbone whose stretch is
/// good on expander-like graphs; it completes the backbone ablation
/// alongside Kruskal and AKPW.

#include "graph/graph.hpp"
#include "tree/spanning_tree.hpp"

namespace ssp {

/// Dijkstra shortest-path tree from `source` using length(e) = 1/w(e).
/// Throws when `g` is not connected.
[[nodiscard]] SpanningTree shortest_path_tree(const Graph& g, Vertex source);

/// Convenience: SPT rooted at the vertex of maximum weighted degree (a
/// cheap "center" heuristic).
[[nodiscard]] SpanningTree shortest_path_tree_from_center(const Graph& g);

}  // namespace ssp
