#pragma once

/// \file kruskal.hpp
/// Maximum-weight spanning tree (Kruskal + union–find).
///
/// For Laplacians, maximizing total edge weight minimizes the sum of tree
/// edge *resistances* greedily — the classic practical backbone choice and
/// the baseline the AKPW low-stretch tree is compared against
/// (bench_ablation_backbone).

#include <vector>

#include "graph/graph.hpp"
#include "graph/graph_view.hpp"
#include "tree/spanning_tree.hpp"

namespace ssp {

/// Edge ids of the canonical maximum-weight spanning tree of `g`, in
/// Kruskal acceptance order (stable sort by weight descending, ties by
/// ascending id). Consumes a `GraphView`, so the scan runs directly on an
/// mmap'd `.sspb` graph without materializing a heap `Graph`. Throws when
/// `g` is not connected. `max_weight_spanning_tree` is this scan plus a
/// `SpanningTree` rooting over the host graph.
[[nodiscard]] std::vector<EdgeId> max_weight_tree_edges(const GraphView& g);

/// Maximum-weight spanning tree. Throws when `g` is not connected.
[[nodiscard]] SpanningTree max_weight_spanning_tree(const Graph& g,
                                                    Vertex root = 0);

/// Minimum-weight spanning tree (used by tests as an adversarial backbone).
[[nodiscard]] SpanningTree min_weight_spanning_tree(const Graph& g,
                                                    Vertex root = 0);

}  // namespace ssp
