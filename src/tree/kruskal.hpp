#pragma once

/// \file kruskal.hpp
/// Maximum-weight spanning tree (Kruskal + union–find).
///
/// For Laplacians, maximizing total edge weight minimizes the sum of tree
/// edge *resistances* greedily — the classic practical backbone choice and
/// the baseline the AKPW low-stretch tree is compared against
/// (bench_ablation_backbone).

#include "graph/graph.hpp"
#include "tree/spanning_tree.hpp"

namespace ssp {

/// Maximum-weight spanning tree. Throws when `g` is not connected.
[[nodiscard]] SpanningTree max_weight_spanning_tree(const Graph& g,
                                                    Vertex root = 0);

/// Minimum-weight spanning tree (used by tests as an adversarial backbone).
[[nodiscard]] SpanningTree min_weight_spanning_tree(const Graph& g,
                                                    Vertex root = 0);

}  // namespace ssp
