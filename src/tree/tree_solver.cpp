#include "tree/tree_solver.hpp"

#include "la/kernels/kernels.hpp"
#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace ssp {

TreeSolver::TreeSolver(const SpanningTree& t) : t_(&t) {}

void TreeSolver::solve(std::span<const double> b, std::span<double> x) const {
  const Vertex n = t_->num_vertices();
  SSP_REQUIRE(static_cast<Vertex>(b.size()) == n, "tree solve: b size");
  SSP_REQUIRE(static_cast<Vertex>(x.size()) == n, "tree solve: x size");

  // Hot path: the disabled-metrics cost is one relaxed load + branch.
  obs::counter_add("solver.tree.solves", 1);

  // Per-thread scratch keeps solve() re-entrant without allocating in the
  // steady state (each worker thread reuses its own buffer).
  thread_local Vec flow_;
  flow_.resize(static_cast<std::size_t>(n));

  // Project b onto the Laplacian range (zero sum). kernels::sum uses the
  // canonical lane-blocked order — the same order col_sums applies per
  // panel column, which keeps solve_multi columns bit-identical to this.
  const double bmean = kernels::sum(b) / static_cast<double>(n);

  for (Vertex v = 0; v < n; ++v) {
    flow_[static_cast<std::size_t>(v)] =
        b[static_cast<std::size_t>(v)] - bmean;
  }

  const auto order = t_->bfs_order();
  // Leaf-to-root: accumulate subtree injections into the parent.
  for (std::size_t i = order.size(); i-- > 1;) {
    const Vertex v = order[i];
    const Vertex p = t_->parent(v);
    flow_[static_cast<std::size_t>(p)] += flow_[static_cast<std::size_t>(v)];
  }
  // Root-to-leaf: integrate potentials.
  x[static_cast<std::size_t>(t_->root())] = 0.0;
  for (std::size_t i = 1; i < order.size(); ++i) {
    const Vertex v = order[i];
    const Vertex p = t_->parent(v);
    x[static_cast<std::size_t>(v)] =
        x[static_cast<std::size_t>(p)] +
        flow_[static_cast<std::size_t>(v)] / t_->parent_weight(v);
  }
  project_out_mean(x);
}

Vec TreeSolver::solve(std::span<const double> b) const {
  Vec x(static_cast<std::size_t>(num_vertices()));
  solve(b, x);
  return x;
}

void TreeSolver::solve_multi(std::span<const double> b, std::span<double> x,
                             Index r) const {
  const auto n = static_cast<Index>(t_->num_vertices());
  SSP_REQUIRE(r >= 1, "tree solve_multi: need r >= 1");
  SSP_REQUIRE(static_cast<Index>(b.size()) == n * r,
              "tree solve_multi: b size");
  SSP_REQUIRE(static_cast<Index>(x.size()) == n * r,
              "tree solve_multi: x size");

  obs::counter_add("solver.tree.panel_solves", 1);
  obs::counter_add("solver.tree.panel_columns", static_cast<std::uint64_t>(r));

  const auto& k = kernels::ops();
  thread_local Vec flow_panel_;
  thread_local Vec col_scratch_;
  flow_panel_.resize(static_cast<std::size_t>(n * r));
  col_scratch_.resize(static_cast<std::size_t>(r));

  // Per-column mean projection of b: c[j] = mean of column j (col_sums
  // uses the lane-blocked order of kernels::sum, so each column matches
  // the single-RHS solve bit for bit).
  k.col_sums(b.data(), n, r, col_scratch_.data());
  for (Index j = 0; j < r; ++j) col_scratch_[j] /= static_cast<double>(n);
  k.sub_row_bias(b.data(), col_scratch_.data(), flow_panel_.data(), n, r);

  const auto order = t_->bfs_order();
  const auto parents = t_->parents();
  const auto weights = t_->parent_weights();
  k.tree_accumulate(order.data(), parents.data(), n, flow_panel_.data(), r);
  k.tree_integrate(order.data(), parents.data(), weights.data(), n,
                   flow_panel_.data(), x.data(), r);

  // Per-column zero-mean output (pseudoinverse convention): x[v][j] +=
  // −mean_j, the same x + (−m) form project_out_mean applies per column.
  k.col_sums(x.data(), n, r, col_scratch_.data());
  for (Index j = 0; j < r; ++j) {
    col_scratch_[j] = -(col_scratch_[j] / static_cast<double>(n));
  }
  k.add_row_bias(x.data(), n, r, col_scratch_.data());
}

}  // namespace ssp
