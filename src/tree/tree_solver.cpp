#include "tree/tree_solver.hpp"

#include "util/assert.hpp"

namespace ssp {

TreeSolver::TreeSolver(const SpanningTree& t) : t_(&t) {}

void TreeSolver::solve(std::span<const double> b, std::span<double> x) const {
  const Vertex n = t_->num_vertices();
  SSP_REQUIRE(static_cast<Vertex>(b.size()) == n, "tree solve: b size");
  SSP_REQUIRE(static_cast<Vertex>(x.size()) == n, "tree solve: x size");

  // Per-thread scratch keeps solve() re-entrant without allocating in the
  // steady state (each worker thread reuses its own buffer).
  thread_local Vec flow_;
  flow_.resize(static_cast<std::size_t>(n));

  // Project b onto the Laplacian range (zero sum).
  double bmean = 0.0;
  for (double v : b) bmean += v;
  bmean /= static_cast<double>(n);

  for (Vertex v = 0; v < n; ++v) {
    flow_[static_cast<std::size_t>(v)] =
        b[static_cast<std::size_t>(v)] - bmean;
  }

  const auto order = t_->bfs_order();
  // Leaf-to-root: accumulate subtree injections into the parent.
  for (std::size_t i = order.size(); i-- > 1;) {
    const Vertex v = order[i];
    const Vertex p = t_->parent(v);
    flow_[static_cast<std::size_t>(p)] += flow_[static_cast<std::size_t>(v)];
  }
  // Root-to-leaf: integrate potentials.
  x[static_cast<std::size_t>(t_->root())] = 0.0;
  for (std::size_t i = 1; i < order.size(); ++i) {
    const Vertex v = order[i];
    const Vertex p = t_->parent(v);
    x[static_cast<std::size_t>(v)] =
        x[static_cast<std::size_t>(p)] +
        flow_[static_cast<std::size_t>(v)] / t_->parent_weight(v);
  }
  project_out_mean(x);
}

Vec TreeSolver::solve(std::span<const double> b) const {
  Vec x(static_cast<std::size_t>(num_vertices()));
  solve(b, x);
  return x;
}

}  // namespace ssp
