#pragma once

/// \file akpw.hpp
/// Low-stretch spanning tree in the Alon–Karp–Peleg–West style — the
/// practical LSST the paper's step (a) calls for (it cites the stronger
/// Abraham–Neiman / Elkin et al. constructions [1,8]; AKPW-style cluster
/// contraction is what deployed implementations, including Feng's GRASS
/// lineage, actually use).
///
/// Outline: edges are bucketed into geometric *length* classes
/// (length = 1/weight, heaviest edges first). Processing classes in order,
/// the algorithm repeatedly grows randomized-radius BFS balls over the
/// current cluster multigraph, adds the BFS tree edges to the spanning
/// tree, and contracts each ball into one cluster. Short (heavy) edges are
/// therefore overwhelmingly kept inside clusters, which is what bounds the
/// stretch of the discarded edges.

#include "graph/graph.hpp"
#include "tree/spanning_tree.hpp"
#include "util/rng.hpp"

namespace ssp {

struct AkpwOptions {
  /// Geometric growth of the edge-length classes.
  double class_ratio = 4.0;
  /// Ball-radius geometric parameter; 0 selects 1/(log2 n + 1).
  double ball_p = 0.0;
  /// Root of the returned rooted tree.
  Vertex root = 0;
};

/// Builds an AKPW-style low-stretch spanning tree. Throws when `g` is not
/// connected.
[[nodiscard]] SpanningTree akpw_low_stretch_tree(const Graph& g, Rng& rng,
                                                 const AkpwOptions& opts = {});

}  // namespace ssp
