#pragma once

/// \file recursive_bisection.hpp
/// Recursive spectral bisection: k-way partitioning by repeatedly
/// bisecting the largest part with Fiedler sign cuts — the classic
/// Chaco-lineage alternative to the k-means embedding of
/// spectral_clustering.hpp. Each sub-bisection runs on the induced
/// subgraph (largest connected component) with the same direct /
/// sparsifier-PCG solver choices as spectral_bisection.

#include "partition/spectral_bisection.hpp"

namespace ssp {

struct RecursiveBisectionOptions {
  Index num_parts = 4;  ///< target part count (>= 2; need not be a power of 2)
  BisectionOptions bisection;  ///< solver configuration per cut
  /// Parts smaller than this are never split further.
  Index min_part_size = 8;
};

struct RecursiveBisectionResult {
  std::vector<Vertex> assignment;  ///< per-vertex part id in [0, parts)
  Index parts = 0;                 ///< parts actually produced
  double total_cut_weight = 0.0;   ///< Σ w(e) over edges between parts
  double seconds = 0.0;
};

/// Partitions a graph into (up to) `num_parts` parts. Part ids are
/// compacted to [0, parts) and every id in that range is non-empty. The
/// input need not be connected: each connected component seeds its own
/// part (a part never spans components), so a graph with more components
/// than `num_parts` yields one part per component. Small graphs may
/// produce fewer than `num_parts` parts because pieces below
/// 2·min_part_size are never split.
[[nodiscard]] RecursiveBisectionResult recursive_bisection(
    const Graph& g, const RecursiveBisectionOptions& opts = {});

}  // namespace ssp
