#pragma once

/// \file spectral_bisection.hpp
/// Two-way spectral partitioning — the paper's Table 3 experiment.
///
/// The approximate Fiedler vector is computed with a few inverse power
/// iterations; each iteration is one Laplacian solve performed by either
///  * the direct solver (sparse Cholesky — CHOLMOD's role in the paper), or
///  * PCG preconditioned by a similarity-aware sparsifier of the input
///    graph (the paper extracts sparsifiers with σ² ≤ 200).
/// The sign cut of the resulting vector partitions the graph; Table 3
/// compares runtime, memory, balance and the sign disagreement Rel.Err
/// between the two solvers.

#include <cstdint>

#include "core/sparsifier.hpp"
#include "eigen/fiedler.hpp"
#include "partition/metrics.hpp"
#include "partition/sign_cut.hpp"

namespace ssp {

enum class FiedlerSolverKind {
  kDirectCholesky,  ///< sparse Cholesky factorization of the grounded L_G
  kSparsifierPcg,   ///< PCG on L_G preconditioned by a σ²-sparsifier
};

struct BisectionOptions {
  FiedlerSolverKind solver = FiedlerSolverKind::kSparsifierPcg;
  /// Sparsifier target for kSparsifierPcg (paper: σ² ≤ 200).
  SparsifyOptions sparsify = {.sigma2 = 200.0};
  /// "a few inverse power iterations" [20] suffice for a sign cut; the
  /// Rayleigh quotient does not need many digits.
  FiedlerOptions fiedler = {.max_iterations = 15, .rel_tolerance = 1e-5};
  /// Tolerance of each inner PCG solve (kSparsifierPcg).
  double pcg_tolerance = 1e-6;
  std::uint64_t seed = 42;
};

struct BisectionResult {
  std::vector<std::uint8_t> partition;
  Vec fiedler;
  double lambda2 = 0.0;
  CutMetrics metrics;
  /// Fiedler-solve wall time — excludes sparsification, mirroring Table 3's
  /// T_D / T_I ("total solution time (excluding sparsification time)").
  double solve_seconds = 0.0;
  double sparsify_seconds = 0.0;  ///< 0 for the direct solver
  /// Analytic solver memory: Cholesky factor storage, or sparsifier CSR +
  /// preconditioner arrays — Table 3's M_D / M_I.
  std::size_t solver_memory_bytes = 0;
  Index power_iterations = 0;
  EdgeId sparsifier_edges = 0;  ///< 0 for the direct solver
};

/// Bisects a connected graph. Throws std::invalid_argument on bad input.
[[nodiscard]] BisectionResult spectral_bisection(
    const Graph& g, const BisectionOptions& opts = {});

}  // namespace ssp
