#pragma once

/// \file spectral_clustering.hpp
/// k-way spectral clustering — the paper's §4.4 application ("spectral
/// clustering (partitioning) using the original RCV-80NN graph can not be
/// performed on our server …, while it only takes a few minutes using the
/// sparsified one") and the classical algorithm of [14]:
///
///   1. compute the first k nontrivial Laplacian eigenvectors,
///   2. embed vertex v at (u₂(v), …, u_{k+1}(v)) ∈ R^k,
///   3. cluster the embedded points with k-means (k-means++ seeding).
///
/// Because the sparsifier preserves the low eigenvectors (the "low-pass"
/// guarantee of §3.4), clustering the sparsified graph recovers the same
/// partition at a fraction of the eigensolver cost.

#include <cstdint>
#include <vector>

#include "eigen/operators.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace ssp {

struct SpectralClusteringOptions {
  Index num_clusters = 2;        ///< k
  Index lanczos_steps = 0;       ///< 0 selects 3k + 20
  Index kmeans_iterations = 50;  ///< Lloyd iterations after k-means++
  Index kmeans_restarts = 3;     ///< best of N seedings
  double solver_tolerance = 1e-6;
  std::uint64_t seed = 42;
};

struct SpectralClusteringResult {
  std::vector<Vertex> assignment;  ///< per-vertex cluster id in [0, k)
  Vec eigenvalues;                 ///< the k embedding eigenvalues
  double kmeans_objective = 0.0;   ///< final within-cluster sum of squares
  double eigensolver_seconds = 0.0;
  double kmeans_seconds = 0.0;
};

/// Clusters a connected graph into k parts. The Laplacian solves behind
/// the inverse-Lanczos embedding run through `solve` (tree-PCG, Cholesky,
/// AMG — caller's choice; see make_*_op in eigen/operators.hpp).
[[nodiscard]] SpectralClusteringResult spectral_clustering(
    const Graph& g, const LinOp& solve,
    const SpectralClusteringOptions& opts = {});

/// Convenience overload: builds a spanning-tree-preconditioned PCG solver
/// internally.
[[nodiscard]] SpectralClusteringResult spectral_clustering(
    const Graph& g, const SpectralClusteringOptions& opts = {});

/// Normalized mutual information between two cluster assignments — the
/// standard agreement score for comparing clusterings of the original vs
/// sparsified graph. Returns a value in [0, 1] (1 = identical up to label
/// permutation).
[[nodiscard]] double normalized_mutual_information(
    std::span<const Vertex> a, std::span<const Vertex> b);

}  // namespace ssp
