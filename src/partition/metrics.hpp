#pragma once

/// \file metrics.hpp
/// Cut-quality metrics for two-way partitions.

#include <cstdint>
#include <span>

#include "graph/graph.hpp"

namespace ssp {

struct CutMetrics {
  double cut_weight = 0.0;   ///< Σ w(e) over edges crossing the cut
  Index cut_edges = 0;       ///< number of crossing edges
  double balance = 0.0;      ///< |V₊|/|V₋|
  /// cut_weight / min(vol₊, vol₋) with vol = Σ weighted degree — the
  /// conductance Φ of the cut.
  double conductance = 0.0;
};

/// Evaluates a 0/1 partition of g's vertices. Throws when a side is empty
/// or sizes mismatch.
[[nodiscard]] CutMetrics evaluate_cut(const Graph& g,
                                      std::span<const std::uint8_t> side);

}  // namespace ssp
