#include "partition/recursive_bisection.hpp"

#include <algorithm>
#include <queue>

#include "graph/connectivity.hpp"
#include "graph/subgraph.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace ssp {

namespace {

/// A part pending further splitting: its vertices (original ids).
struct Part {
  std::vector<Vertex> vertices;
};

}  // namespace

RecursiveBisectionResult recursive_bisection(
    const Graph& g, const RecursiveBisectionOptions& opts) {
  SSP_REQUIRE(g.finalized(), "recursive_bisection: graph must be finalized");
  SSP_REQUIRE(opts.num_parts >= 2, "recursive_bisection: need >= 2 parts");
  SSP_REQUIRE(opts.min_part_size >= 4,
              "recursive_bisection: min_part_size must be >= 4");

  const WallTimer timer;
  RecursiveBisectionResult out;
  out.assignment.assign(static_cast<std::size_t>(g.num_vertices()), 0);

  // Worklist ordered by size: always split the largest remaining part.
  // Equal sizes (common once every component seeds its own part) break
  // toward the part holding the smallest leading vertex — parts are
  // disjoint, so the ordering is total and the result never depends on
  // the STL's heap implementation.
  auto size_cmp = [](const Part& a, const Part& b) {
    if (a.vertices.size() != b.vertices.size()) {
      return a.vertices.size() < b.vertices.size();
    }
    return a.vertices.front() > b.vertices.front();
  };
  std::priority_queue<Part, std::vector<Part>, decltype(size_cmp)> work(
      size_cmp);
  // Seed with one part per connected component: a part never spans
  // components, so disconnected inputs are handled by construction (the
  // result then has at least one part per component, even beyond
  // num_parts).
  const ComponentLabels comps = connected_components(g);
  {
    std::vector<Part> seeds(static_cast<std::size_t>(comps.num_components));
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      const Vertex c = comps.label[static_cast<std::size_t>(v)];
      seeds[static_cast<std::size_t>(c)].vertices.push_back(v);
      out.assignment[static_cast<std::size_t>(v)] = c;
    }
    for (Part& seed : seeds) work.push(std::move(seed));
  }
  Index parts_made = comps.num_components;
  Vertex next_label = comps.num_components;

  while (parts_made < opts.num_parts && !work.empty()) {
    Part part = work.top();
    work.pop();
    if (static_cast<Index>(part.vertices.size()) <
        2 * opts.min_part_size) {
      continue;  // too small to split; label stays
    }
    const Subgraph sub = induced_subgraph(g, part.vertices);
    // Bisect the largest component of the induced subgraph; stragglers in
    // other components keep the part's current label.
    std::vector<Vertex> comp_to_sub;
    const Graph comp = largest_component(sub.graph, &comp_to_sub);
    if (comp.num_vertices() < 2 * static_cast<Vertex>(opts.min_part_size)) {
      continue;
    }
    BisectionResult cut;
    try {
      cut = spectral_bisection(comp, opts.bisection);
    } catch (const std::exception&) {
      continue;  // degenerate piece; leave unsplit
    }

    Part side1;
    Part side0;
    for (Vertex c = 0; c < comp.num_vertices(); ++c) {
      const Vertex orig = sub.local_to_global[static_cast<std::size_t>(
          comp_to_sub[static_cast<std::size_t>(c)])];
      if (cut.partition[static_cast<std::size_t>(c)] != 0) {
        side1.vertices.push_back(orig);
      } else {
        side0.vertices.push_back(orig);
      }
    }
    if (side1.vertices.empty() || side0.vertices.empty()) continue;
    for (Vertex v : side1.vertices) {
      out.assignment[static_cast<std::size_t>(v)] = next_label;
    }
    ++next_label;
    ++parts_made;
    work.push(std::move(side0));
    work.push(std::move(side1));
  }

  // Compact labels and compute the cut weight.
  std::vector<Vertex> remap(static_cast<std::size_t>(next_label),
                            kInvalidVertex);
  Vertex compact = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    auto& m = remap[static_cast<std::size_t>(
        out.assignment[static_cast<std::size_t>(v)])];
    if (m == kInvalidVertex) m = compact++;
    out.assignment[static_cast<std::size_t>(v)] = m;
  }
  out.parts = compact;
  for (const Edge& e : g.edges()) {
    if (out.assignment[static_cast<std::size_t>(e.u)] !=
        out.assignment[static_cast<std::size_t>(e.v)]) {
      out.total_cut_weight += e.weight;
    }
  }
  out.seconds = timer.seconds();
  return out;
}

}  // namespace ssp
