#include "partition/recursive_bisection.hpp"

#include <algorithm>
#include <queue>

#include "graph/connectivity.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace ssp {

namespace {

/// A part pending further splitting: its vertices (original ids).
struct Part {
  std::vector<Vertex> vertices;
};

/// Builds the induced subgraph on `vertices`; returns it plus the local→
/// original vertex map (the induced graph may be disconnected — callers
/// bisect its largest component and keep the rest with side 0).
Graph induced_subgraph(const Graph& g, std::span<const Vertex> vertices,
                       std::vector<Vertex>& local_to_orig) {
  std::vector<Vertex> orig_to_local(
      static_cast<std::size_t>(g.num_vertices()), kInvalidVertex);
  local_to_orig.assign(vertices.begin(), vertices.end());
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    orig_to_local[static_cast<std::size_t>(vertices[i])] =
        static_cast<Vertex>(i);
  }
  Graph sub(static_cast<Vertex>(vertices.size()));
  for (const Edge& e : g.edges()) {
    const Vertex lu = orig_to_local[static_cast<std::size_t>(e.u)];
    const Vertex lv = orig_to_local[static_cast<std::size_t>(e.v)];
    if (lu != kInvalidVertex && lv != kInvalidVertex) {
      sub.add_edge(lu, lv, e.weight);
    }
  }
  sub.finalize();
  return sub;
}

}  // namespace

RecursiveBisectionResult recursive_bisection(
    const Graph& g, const RecursiveBisectionOptions& opts) {
  SSP_REQUIRE(g.finalized(), "recursive_bisection: graph must be finalized");
  SSP_REQUIRE(opts.num_parts >= 2, "recursive_bisection: need >= 2 parts");
  SSP_REQUIRE(opts.min_part_size >= 4,
              "recursive_bisection: min_part_size must be >= 4");
  SSP_REQUIRE(is_connected(g), "recursive_bisection: graph must be connected");

  const WallTimer timer;
  RecursiveBisectionResult out;
  out.assignment.assign(static_cast<std::size_t>(g.num_vertices()), 0);

  // Worklist ordered by size: always split the largest remaining part.
  auto size_cmp = [](const Part& a, const Part& b) {
    return a.vertices.size() < b.vertices.size();
  };
  std::priority_queue<Part, std::vector<Part>, decltype(size_cmp)> work(
      size_cmp);
  {
    Part all;
    all.vertices.resize(static_cast<std::size_t>(g.num_vertices()));
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      all.vertices[static_cast<std::size_t>(v)] = v;
    }
    work.push(std::move(all));
  }
  Index parts_made = 1;
  Vertex next_label = 1;

  while (parts_made < opts.num_parts && !work.empty()) {
    Part part = work.top();
    work.pop();
    if (static_cast<Index>(part.vertices.size()) <
        2 * opts.min_part_size) {
      continue;  // too small to split; label stays
    }
    std::vector<Vertex> local_to_orig;
    const Graph sub = induced_subgraph(g, part.vertices, local_to_orig);
    // Bisect the largest component of the induced subgraph; stragglers in
    // other components keep the part's current label.
    std::vector<Vertex> comp_to_sub;
    const Graph comp = largest_component(sub, &comp_to_sub);
    if (comp.num_vertices() < 2 * static_cast<Vertex>(opts.min_part_size)) {
      continue;
    }
    BisectionResult cut;
    try {
      cut = spectral_bisection(comp, opts.bisection);
    } catch (const std::exception&) {
      continue;  // degenerate piece; leave unsplit
    }

    Part side1;
    Part side0;
    for (Vertex c = 0; c < comp.num_vertices(); ++c) {
      const Vertex orig = local_to_orig[static_cast<std::size_t>(
          comp_to_sub[static_cast<std::size_t>(c)])];
      if (cut.partition[static_cast<std::size_t>(c)] != 0) {
        side1.vertices.push_back(orig);
      } else {
        side0.vertices.push_back(orig);
      }
    }
    if (side1.vertices.empty() || side0.vertices.empty()) continue;
    for (Vertex v : side1.vertices) {
      out.assignment[static_cast<std::size_t>(v)] = next_label;
    }
    ++next_label;
    ++parts_made;
    work.push(std::move(side0));
    work.push(std::move(side1));
  }

  // Compact labels and compute the cut weight.
  std::vector<Vertex> remap(static_cast<std::size_t>(next_label),
                            kInvalidVertex);
  Vertex compact = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    auto& m = remap[static_cast<std::size_t>(
        out.assignment[static_cast<std::size_t>(v)])];
    if (m == kInvalidVertex) m = compact++;
    out.assignment[static_cast<std::size_t>(v)] = m;
  }
  out.parts = compact;
  for (const Edge& e : g.edges()) {
    if (out.assignment[static_cast<std::size_t>(e.u)] !=
        out.assignment[static_cast<std::size_t>(e.v)]) {
      out.total_cut_weight += e.weight;
    }
  }
  out.seconds = timer.seconds();
  return out;
}

}  // namespace ssp
