#include "partition/spectral_bisection.hpp"

#include "core/sparsifier_preconditioner.hpp"
#include "eigen/operators.hpp"
#include "graph/connectivity.hpp"
#include "graph/laplacian.hpp"
#include "solver/cholesky.hpp"
#include "solver/pcg.hpp"
#include "solver/preconditioner.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace ssp {

BisectionResult spectral_bisection(const Graph& g,
                                   const BisectionOptions& opts) {
  SSP_REQUIRE(g.finalized(), "bisection: graph must be finalized");
  SSP_REQUIRE(g.num_vertices() >= 4, "bisection: graph too small");
  SSP_REQUIRE(is_connected(g), "bisection: graph must be connected");

  BisectionResult out;
  Rng rng(opts.seed);
  const CsrMatrix lg = laplacian(g);

  if (opts.solver == FiedlerSolverKind::kDirectCholesky) {
    WallTimer t;
    const SparseCholesky chol = SparseCholesky::factor_laplacian(lg);
    const FiedlerResult fr =
        fiedler_vector(lg, make_cholesky_op(chol), rng, opts.fiedler);
    out.solve_seconds = t.seconds();
    out.solver_memory_bytes = chol.memory_bytes();
    out.fiedler = fr.vector;
    out.lambda2 = fr.eigenvalue;
    out.power_iterations = fr.iterations;
  } else {
    WallTimer ts;
    SparsifyOptions sopts = opts.sparsify;
    sopts.seed = opts.seed;
    const SparsifyResult sp = sparsify(g, sopts);
    out.sparsify_seconds = ts.seconds();
    out.sparsifier_edges = sp.num_edges();

    const Graph p = sp.extract(g);
    const SparsifierPreconditioner precond(p);

    WallTimer t;
    const LinOp solve =
        make_pcg_op(lg, precond,
                    {.max_iterations = 500,
                     .rel_tolerance = opts.pcg_tolerance,
                     .project_constants = true});
    const FiedlerResult fr = fiedler_vector(lg, solve, rng, opts.fiedler);
    out.solve_seconds = t.seconds();
    // Analytic memory: the factored sparsifier (Table 3's M_I).
    out.solver_memory_bytes = precond.memory_bytes();
    out.fiedler = fr.vector;
    out.lambda2 = fr.eigenvalue;
    out.power_iterations = fr.iterations;
  }

  out.partition = sign_cut(out.fiedler);
  out.metrics = evaluate_cut(g, out.partition);
  return out;
}

}  // namespace ssp
