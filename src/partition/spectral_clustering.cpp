#include "partition/spectral_clustering.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "eigen/lanczos.hpp"
#include "graph/connectivity.hpp"
#include "graph/laplacian.hpp"
#include "la/vector_ops.hpp"
#include "solver/pcg.hpp"
#include "solver/preconditioner.hpp"
#include "tree/kruskal.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace ssp {

namespace {

/// Row-major n×k spectral embedding built from eigenvectors.
struct Embedding {
  Index n = 0;
  Index k = 0;
  Vec coords;  // coords[v*k + j]

  [[nodiscard]] double sq_dist_to(Index v, std::span<const double> center) const {
    double s = 0.0;
    for (Index j = 0; j < k; ++j) {
      const double d =
          coords[static_cast<std::size_t>(v * k + j)] - center[static_cast<std::size_t>(j)];
      s += d * d;
    }
    return s;
  }
};

struct KmeansResult {
  std::vector<Vertex> assignment;
  double objective = std::numeric_limits<double>::infinity();
};

KmeansResult kmeans_once(const Embedding& emb, Index k, Index iterations,
                         Rng& rng) {
  const Index n = emb.n;
  // k-means++ seeding.
  std::vector<Vec> centers;
  centers.reserve(static_cast<std::size_t>(k));
  {
    const auto first = static_cast<Index>(rng.uniform_int(0, n - 1));
    centers.emplace_back(emb.coords.begin() + first * emb.k,
                         emb.coords.begin() + (first + 1) * emb.k);
    Vec d2(static_cast<std::size_t>(n));
    while (static_cast<Index>(centers.size()) < k) {
      double total = 0.0;
      for (Index v = 0; v < n; ++v) {
        double best = std::numeric_limits<double>::infinity();
        for (const Vec& c : centers) {
          best = std::min(best, emb.sq_dist_to(v, c));
        }
        d2[static_cast<std::size_t>(v)] = best;
        total += best;
      }
      if (total <= 0.0) {
        // All points coincide with centers; duplicate one.
        centers.push_back(centers.front());
        continue;
      }
      double pick = rng.uniform() * total;
      Index chosen = n - 1;
      for (Index v = 0; v < n; ++v) {
        pick -= d2[static_cast<std::size_t>(v)];
        if (pick <= 0.0) {
          chosen = v;
          break;
        }
      }
      centers.emplace_back(emb.coords.begin() + chosen * emb.k,
                           emb.coords.begin() + (chosen + 1) * emb.k);
    }
  }

  KmeansResult res;
  res.assignment.assign(static_cast<std::size_t>(n), 0);
  std::vector<Index> counts(static_cast<std::size_t>(k));
  for (Index it = 0; it < iterations; ++it) {
    bool changed = false;
    // Assignment step.
    for (Index v = 0; v < n; ++v) {
      Index best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (Index c = 0; c < k; ++c) {
        const double d = emb.sq_dist_to(v, centers[static_cast<std::size_t>(c)]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (res.assignment[static_cast<std::size_t>(v)] !=
          static_cast<Vertex>(best)) {
        res.assignment[static_cast<std::size_t>(v)] =
            static_cast<Vertex>(best);
        changed = true;
      }
    }
    // Update step.
    for (Vec& c : centers) fill(c, 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (Index v = 0; v < n; ++v) {
      const auto c = static_cast<std::size_t>(res.assignment[static_cast<std::size_t>(v)]);
      ++counts[c];
      for (Index j = 0; j < emb.k; ++j) {
        centers[c][static_cast<std::size_t>(j)] +=
            emb.coords[static_cast<std::size_t>(v * emb.k + j)];
      }
    }
    for (Index c = 0; c < k; ++c) {
      if (counts[static_cast<std::size_t>(c)] == 0) {
        // Re-seed an empty cluster at a random point.
        const auto v = static_cast<Index>(rng.uniform_int(0, n - 1));
        std::copy(emb.coords.begin() + v * emb.k,
                  emb.coords.begin() + (v + 1) * emb.k,
                  centers[static_cast<std::size_t>(c)].begin());
        continue;
      }
      scale(centers[static_cast<std::size_t>(c)],
            1.0 / static_cast<double>(counts[static_cast<std::size_t>(c)]));
    }
    if (!changed) break;
  }
  // Objective.
  res.objective = 0.0;
  for (Index v = 0; v < n; ++v) {
    res.objective += emb.sq_dist_to(
        v, centers[static_cast<std::size_t>(
               res.assignment[static_cast<std::size_t>(v)])]);
  }
  return res;
}

}  // namespace

SpectralClusteringResult spectral_clustering(
    const Graph& g, const LinOp& solve,
    const SpectralClusteringOptions& opts) {
  SSP_REQUIRE(g.finalized(), "clustering: graph must be finalized");
  SSP_REQUIRE(opts.num_clusters >= 2, "clustering: need k >= 2");
  SSP_REQUIRE(opts.num_clusters < g.num_vertices(),
              "clustering: k must be < |V|");
  SSP_REQUIRE(opts.kmeans_restarts >= 1, "clustering: need >= 1 restart");

  const Index n = g.num_vertices();
  const Index k = opts.num_clusters;
  Rng rng(opts.seed);

  SpectralClusteringResult out;
  {
    const WallTimer t;
    const Index steps =
        opts.lanczos_steps > 0 ? opts.lanczos_steps : 3 * k + 20;
    const EigenPairs pairs =
        smallest_laplacian_eigenpairs(n, k, solve, steps, rng);
    SSP_ASSERT(!pairs.vectors.empty(), "clustering: eigensolver failed");
    out.eigenvalues = pairs.values;
    out.eigensolver_seconds = t.seconds();

    // Build the n×k' embedding (k' = pairs found; may be < k on tiny
    // graphs).
    Embedding emb;
    emb.n = n;
    emb.k = static_cast<Index>(pairs.vectors.size());
    emb.coords.resize(static_cast<std::size_t>(n * emb.k));
    for (Index j = 0; j < emb.k; ++j) {
      const Vec& u = pairs.vectors[static_cast<std::size_t>(j)];
      for (Index v = 0; v < n; ++v) {
        emb.coords[static_cast<std::size_t>(v * emb.k + j)] =
            u[static_cast<std::size_t>(v)];
      }
    }

    const WallTimer tk;
    KmeansResult best;
    for (Index r = 0; r < opts.kmeans_restarts; ++r) {
      KmeansResult attempt =
          kmeans_once(emb, k, opts.kmeans_iterations, rng);
      if (attempt.objective < best.objective) best = std::move(attempt);
    }
    out.assignment = std::move(best.assignment);
    out.kmeans_objective = best.objective;
    out.kmeans_seconds = tk.seconds();
  }
  return out;
}

SpectralClusteringResult spectral_clustering(
    const Graph& g, const SpectralClusteringOptions& opts) {
  SSP_REQUIRE(is_connected(g), "clustering: graph must be connected");
  const CsrMatrix l = laplacian(g);
  const SpanningTree tree = max_weight_spanning_tree(g);
  const TreePreconditioner precond(tree);
  const LinOp solve = make_pcg_op(
      l, precond,
      {.max_iterations = 3000,
       .rel_tolerance = opts.solver_tolerance,
       .project_constants = true});
  return spectral_clustering(g, solve, opts);
}

double normalized_mutual_information(std::span<const Vertex> a,
                                     std::span<const Vertex> b) {
  SSP_REQUIRE(a.size() == b.size() && !a.empty(),
              "nmi: assignments must be non-empty and equal-sized");
  const double n = static_cast<double>(a.size());
  std::map<Vertex, double> pa;
  std::map<Vertex, double> pb;
  std::map<std::pair<Vertex, Vertex>, double> pab;
  for (std::size_t i = 0; i < a.size(); ++i) {
    pa[a[i]] += 1.0;
    pb[b[i]] += 1.0;
    pab[{a[i], b[i]}] += 1.0;
  }
  double ha = 0.0;
  for (auto& [label, c] : pa) {
    c /= n;
    ha -= c * std::log(c);
  }
  double hb = 0.0;
  for (auto& [label, c] : pb) {
    c /= n;
    hb -= c * std::log(c);
  }
  double mi = 0.0;
  for (auto& [labels, c] : pab) {
    c /= n;
    mi += c * std::log(c / (pa[labels.first] * pb[labels.second]));
  }
  if (ha <= 0.0 && hb <= 0.0) return 1.0;  // both single-cluster
  const double denom = std::sqrt(std::max(ha, 1e-300) * std::max(hb, 1e-300));
  return std::clamp(mi / denom, 0.0, 1.0);
}

}  // namespace ssp
