#pragma once

/// \file sign_cut.hpp
/// Sign-cut partitioning from an (approximate) Fiedler vector — the method
/// of the paper's Table 3 ("partitioned into two pieces using sign cut
/// method [18] according to the approximate Fiedler vectors").

#include <cstdint>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace ssp {

/// side[v] = 1 when vec[v] >= 0, else 0.
[[nodiscard]] std::vector<std::uint8_t> sign_cut(std::span<const double> vec);

/// |V₊| / |V₋| — the balance ratio reported in Table 3. Returns +inf when
/// the negative side is empty.
[[nodiscard]] double sign_balance(std::span<const std::uint8_t> side);

/// Fraction of vertices whose side differs between two partitions, taking
/// the better of the two global sign flips — the paper's Rel.Err metric
/// |V_dif|/|V| (Fiedler vectors are defined up to sign).
[[nodiscard]] double sign_disagreement(std::span<const std::uint8_t> a,
                                       std::span<const std::uint8_t> b);

}  // namespace ssp
