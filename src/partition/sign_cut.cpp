#include "partition/sign_cut.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace ssp {

std::vector<std::uint8_t> sign_cut(std::span<const double> vec) {
  std::vector<std::uint8_t> side(vec.size());
  for (std::size_t i = 0; i < vec.size(); ++i) {
    side[i] = vec[i] >= 0.0 ? 1 : 0;
  }
  return side;
}

double sign_balance(std::span<const std::uint8_t> side) {
  std::size_t pos = 0;
  for (std::uint8_t s : side) pos += s;
  const std::size_t neg = side.size() - pos;
  if (neg == 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(pos) / static_cast<double>(neg);
}

double sign_disagreement(std::span<const std::uint8_t> a,
                         std::span<const std::uint8_t> b) {
  SSP_REQUIRE(a.size() == b.size(), "sign_disagreement: size mismatch");
  SSP_REQUIRE(!a.empty(), "sign_disagreement: empty partitions");
  std::size_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) ++diff;
  }
  const std::size_t same_flip = a.size() - diff;
  return static_cast<double>(std::min(diff, same_flip)) /
         static_cast<double>(a.size());
}

}  // namespace ssp
