#include "partition/metrics.hpp"

#include <algorithm>

#include "partition/sign_cut.hpp"
#include "util/assert.hpp"

namespace ssp {

CutMetrics evaluate_cut(const Graph& g, std::span<const std::uint8_t> side) {
  SSP_REQUIRE(g.finalized(), "evaluate_cut: graph must be finalized");
  SSP_REQUIRE(static_cast<Index>(side.size()) == g.num_vertices(),
              "evaluate_cut: partition size mismatch");
  CutMetrics m;
  double vol_pos = 0.0;
  double vol_neg = 0.0;
  std::size_t n_pos = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (side[static_cast<std::size_t>(v)] != 0) {
      vol_pos += g.weighted_degree(v);
      ++n_pos;
    } else {
      vol_neg += g.weighted_degree(v);
    }
  }
  SSP_REQUIRE(n_pos > 0 && n_pos < static_cast<std::size_t>(g.num_vertices()),
              "evaluate_cut: one side of the partition is empty");

  for (const Edge& e : g.edges()) {
    if (side[static_cast<std::size_t>(e.u)] !=
        side[static_cast<std::size_t>(e.v)]) {
      m.cut_weight += e.weight;
      ++m.cut_edges;
    }
  }
  m.balance = sign_balance(side);
  const double vol_min = std::max(std::min(vol_pos, vol_neg), 1e-300);
  m.conductance = m.cut_weight / vol_min;
  return m;
}

}  // namespace ssp
