#include "obs/metrics.hpp"

#include <atomic>
#include <bit>
#include <cmath>
#include <cstring>

namespace ssp::obs {

namespace {

constexpr int kCapacity = 512;  // power of two; probe mask below
constexpr int kMaxNameLen = 95;
constexpr std::uint64_t kClaiming = ~std::uint64_t{0};

struct Slot {
  std::atomic<std::uint64_t> hash{0};  // 0 empty, kClaiming mid-claim
  std::atomic<std::uint8_t> kind{0};
  char name[kMaxNameLen + 1] = {};
  std::atomic<std::uint64_t> value{0};  // counter count / gauge bits
  std::atomic<std::uint64_t> hist_count{0};
  std::atomic<std::uint64_t> hist_sum_bits{0};  // double, CAS-accumulated
  std::atomic<std::uint64_t> buckets[HistogramView::kBuckets]{};
};

// Static storage: the registry must outlive every static destructor
// that might still record (thread pools, session teardown), so it is
// plain zero-initialized BSS with no destructor of its own.
Slot g_slots[kCapacity];
std::atomic<int> g_count{0};
std::atomic<bool> g_enabled{false};

/// Find or claim the slot for (hash, name). Lock-free: losers of the
/// CAS spin only while the winner memcpys a <=96-byte name. Returns
/// nullptr when the table is full (metric silently dropped) — with 512
/// slots and ~100 metrics that never happens in practice.
Slot* find_slot(std::uint64_t hash, std::string_view name,
                MetricKind kind) noexcept {
  const std::uint64_t mask = kCapacity - 1;
  for (std::uint64_t probe = 0; probe < kCapacity; ++probe) {
    Slot& s = g_slots[(hash + probe) & mask];
    for (;;) {
      const std::uint64_t h = s.hash.load(std::memory_order_acquire);
      if (h == hash) return &s;
      if (h == kClaiming) continue;  // another thread is naming this slot
      if (h != 0) break;             // occupied by a different metric
      std::uint64_t expected = 0;
      if (s.hash.compare_exchange_weak(expected, kClaiming,
                                       std::memory_order_acq_rel)) {
        const std::size_t len =
            name.size() < kMaxNameLen ? name.size() : kMaxNameLen;
        std::memcpy(s.name, name.data(), len);
        s.name[len] = '\0';
        s.kind.store(static_cast<std::uint8_t>(kind),
                     std::memory_order_relaxed);
        g_count.fetch_add(1, std::memory_order_relaxed);
        s.hash.store(hash, std::memory_order_release);
        return &s;
      }
    }
  }
  return nullptr;
}

/// Bucket i covers [2^i, 2^(i+1)), except bucket 0 which covers [0, 2).
int bucket_index(double value) noexcept {
  if (!(value >= 2.0)) return 0;  // also catches NaN / negatives
  const auto u = static_cast<std::uint64_t>(value);
  const int idx = 63 - std::countl_zero(u);
  return idx < HistogramView::kBuckets - 1 ? idx
                                           : HistogramView::kBuckets - 1;
}

void atomic_add_double(std::atomic<std::uint64_t>& bits,
                       double delta) noexcept {
  std::uint64_t cur = bits.load(std::memory_order_relaxed);
  for (;;) {
    const double next = std::bit_cast<double>(cur) + delta;
    if (bits.compare_exchange_weak(cur, std::bit_cast<std::uint64_t>(next),
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace

bool metrics_enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

void counter_add(MetricId id, std::uint64_t delta) noexcept {
  if (!metrics_enabled()) return;
  if (Slot* s = find_slot(id.hash, id.name, MetricKind::kCounter)) {
    s->value.fetch_add(delta, std::memory_order_relaxed);
  }
}

void gauge_set(MetricId id, std::int64_t value) noexcept {
  if (!metrics_enabled()) return;
  if (Slot* s = find_slot(id.hash, id.name, MetricKind::kGauge)) {
    s->value.store(static_cast<std::uint64_t>(value),
                   std::memory_order_relaxed);
  }
}

void gauge_add(MetricId id, std::int64_t delta) noexcept {
  if (!metrics_enabled()) return;
  if (Slot* s = find_slot(id.hash, id.name, MetricKind::kGauge)) {
    s->value.fetch_add(static_cast<std::uint64_t>(delta),
                       std::memory_order_relaxed);
  }
}

void histogram_observe(MetricId id, double value) noexcept {
  if (!metrics_enabled()) return;
  if (Slot* s = find_slot(id.hash, id.name, MetricKind::kHistogram)) {
    s->buckets[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    s->hist_count.fetch_add(1, std::memory_order_relaxed);
    atomic_add_double(s->hist_sum_bits, value < 0.0 ? 0.0 : value);
  }
}

void counter_add_named(std::string_view name, std::uint64_t delta) noexcept {
  if (!metrics_enabled()) return;
  if (Slot* s = find_slot(fnv1a(name), name, MetricKind::kCounter)) {
    s->value.fetch_add(delta, std::memory_order_relaxed);
  }
}

void histogram_observe_named(std::string_view name, double value) noexcept {
  if (!metrics_enabled()) return;
  if (Slot* s = find_slot(fnv1a(name), name, MetricKind::kHistogram)) {
    s->buckets[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    s->hist_count.fetch_add(1, std::memory_order_relaxed);
    atomic_add_double(s->hist_sum_bits, value < 0.0 ? 0.0 : value);
  }
}

double HistogramView::percentile(double q) const noexcept {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto target =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count)));
  const std::uint64_t rank = target == 0 ? 1 : target;
  std::uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cum += buckets[i];
    if (cum >= rank) return std::ldexp(1.0, i + 1);
  }
  return std::ldexp(1.0, kBuckets);
}

void visit_metrics(void (*fn)(const MetricEntry&, void*), void* ctx) {
  std::uint64_t bucket_copy[HistogramView::kBuckets];
  for (int i = 0; i < kCapacity; ++i) {
    Slot& s = g_slots[i];
    const std::uint64_t h = s.hash.load(std::memory_order_acquire);
    if (h == 0 || h == kClaiming) continue;
    MetricEntry e{};
    e.name = s.name;
    e.kind = static_cast<MetricKind>(s.kind.load(std::memory_order_relaxed));
    const std::uint64_t raw = s.value.load(std::memory_order_relaxed);
    e.counter = raw;
    e.gauge = static_cast<std::int64_t>(raw);
    if (e.kind == MetricKind::kHistogram) {
      for (int b = 0; b < HistogramView::kBuckets; ++b) {
        bucket_copy[b] = s.buckets[b].load(std::memory_order_relaxed);
      }
      e.hist.buckets = bucket_copy;
      e.hist.count = s.hist_count.load(std::memory_order_relaxed);
      e.hist.sum = std::bit_cast<double>(
          s.hist_sum_bits.load(std::memory_order_relaxed));
    }
    fn(e, ctx);
  }
}

int metric_count() noexcept { return g_count.load(std::memory_order_relaxed); }

void reset_metrics_for_tests() noexcept {
  for (Slot& s : g_slots) {
    s.hash.store(0, std::memory_order_relaxed);
    s.kind.store(0, std::memory_order_relaxed);
    s.name[0] = '\0';
    s.value.store(0, std::memory_order_relaxed);
    s.hist_count.store(0, std::memory_order_relaxed);
    s.hist_sum_bits.store(0, std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
  g_count.store(0, std::memory_order_relaxed);
}

}  // namespace ssp::obs
