#pragma once

/// Span tracer: RAII scopes recorded into per-thread lock-free ring
/// buffers and exported as Chrome `trace_event` JSON, loadable in
/// chrome://tracing or https://ui.perfetto.dev.
///
/// Design contract:
///  - Recording is gated on one relaxed atomic flag (off by default);
///    the disabled path is a load + branch.
///  - Steady state allocates nothing: each thread's ring is a fixed
///    array allocated once on that thread's first span and intentionally
///    leaked (process lifetime), so flushing never races thread exit.
///  - Rings wrap, keeping the most recent ~8k spans per thread; the
///    flush reports how many older spans were overwritten.
///  - `name`/`arg_name` must be static-duration strings (literals or
///    `to_string(enum)` results) — the pointer is stored, not the text.
///  - Flush (`write_chrome_trace`) expects recording threads to be
///    quiescent: call `stop_trace()` (or finish the parallel region)
///    first. Tools flush once at exit.
///
/// Two recording shapes:
///  - `Span`: live RAII scope, measures its own duration.
///  - `TraceScope`: retrospective — the existing observers
///    (StageObserver / ScaleObserver / DynamicObserver) receive post-hoc
///    stage durations, so their callbacks construct a TraceScope which
///    back-dates a complete event ending "now". This is what makes the
///    observer callbacks thin adapters over spans.
///
/// Define SSP_OBS_NO_TRACE to compile every entry point to a no-op.

#include <cstdint>
#include <iosfwd>
#include <string>

namespace ssp::obs {

#ifndef SSP_OBS_NO_TRACE

/// Runtime switch. start_trace() resets all rings, re-bases the trace
/// clock, and enables recording; stop_trace() disables it.
bool trace_enabled() noexcept;
void start_trace() noexcept;
void stop_trace() noexcept;

/// Record a complete event that ended now and lasted `seconds`
/// (back-dated start). Used by observer callbacks which only learn a
/// stage's duration after it ran. Optional integer argument (e.g. a
/// block id) is attached as {"args":{arg_name: arg}}.
void emit_span(const char* name, double seconds,
               const char* arg_name = nullptr, std::int64_t arg = 0) noexcept;

/// Live RAII span over the enclosing scope.
class Span {
 public:
  explicit Span(const char* name, const char* arg_name = nullptr,
                std::int64_t arg = 0) noexcept;
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  const char* arg_name_;
  std::int64_t arg_;
  std::uint64_t start_ns_;
  bool armed_;
};

/// Retrospective span for observer callbacks (duration already known).
struct TraceScope {
  explicit TraceScope(const char* name, double seconds,
                      const char* arg_name = nullptr,
                      std::int64_t arg = 0) noexcept {
    emit_span(name, seconds, arg_name, arg);
  }
};

/// Serialize every recorded span as Chrome trace_event JSON. Safe to
/// call repeatedly; does not clear the rings.
void write_chrome_trace(std::ostream& os);

/// stop_trace() + write_chrome_trace() to `path`. Returns false (after
/// printing to stderr) when the file cannot be written.
bool write_trace_file(const std::string& path);

/// Spans recorded since the last start_trace() (including any that
/// wrapped out of a ring). Test hook.
std::uint64_t trace_span_count() noexcept;

#else  // SSP_OBS_NO_TRACE: every entry point folds to nothing.

inline bool trace_enabled() noexcept { return false; }
inline void start_trace() noexcept {}
inline void stop_trace() noexcept {}
inline void emit_span(const char*, double, const char* = nullptr,
                      std::int64_t = 0) noexcept {}
class Span {
 public:
  explicit Span(const char*, const char* = nullptr, std::int64_t = 0) noexcept {
  }
};
struct TraceScope {
  explicit TraceScope(const char*, double, const char* = nullptr,
                      std::int64_t = 0) noexcept {}
};
inline void write_chrome_trace(std::ostream&) {}
inline bool write_trace_file(const std::string&) { return true; }
inline std::uint64_t trace_span_count() noexcept { return 0; }

#endif  // SSP_OBS_NO_TRACE

}  // namespace ssp::obs
