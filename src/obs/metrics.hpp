#pragma once

/// Process-wide metrics registry: lock-free counters, gauges, and
/// fixed-bucket latency histograms with p50/p95/p99 extraction.
///
/// Metrics are named by `MetricId`, a compile-time FNV-1a hash of a
/// string literal; runtime-composed names (per-block labels) go through
/// the `*_named` overloads which hash at call time. The registry is a
/// fixed-capacity open-addressed table of atomic slots: registration is
/// a CAS claim, updates are relaxed atomic RMWs, and `visit()` walks the
/// live slots without allocating, so a snapshot can be taken from any
/// thread while writers are active.
///
/// Recording is gated on a single relaxed atomic flag that defaults to
/// OFF — the disabled path is one load + branch, cheap enough for the
/// hottest call sites (per tree solve). Nothing here consumes RNG or
/// perturbs float accumulation order: output is bit-identical with
/// metrics on or off.
///
/// Histograms use power-of-two buckets over integer values (commit
/// latencies are recorded in microseconds): value v lands in bucket
/// floor(log2(max(v,1))), and percentiles report the bucket's upper
/// bound, i.e. an estimate within 2x of the true order statistic.

#include <cstdint>
#include <string_view>

namespace ssp::obs {

/// Compile-time FNV-1a (64-bit). Hash 0 is reserved for "empty slot";
/// the astronomically unlikely input hashing to 0 is remapped to 1.
constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h == 0 ? 1 : h;
}

/// A compile-time metric name. Pass string literals only: the pointer is
/// kept (for first-registration naming), not the characters. The
/// constructor is consteval so the hash is always folded at compile time
/// — the disabled fast path must stay one load + branch, never a
/// per-call string hash. Runtime-composed names use the `*_named` calls.
struct MetricId {
  std::uint64_t hash;
  const char* name;
  consteval MetricId(const char* n)  // NOLINT(google-explicit-constructor)
      : hash(fnv1a(n)), name(n) {}
};

enum class MetricKind : std::uint8_t {
  kCounter = 1,
  kGauge = 2,
  kHistogram = 3,
};

/// Global on/off switch. Defaults to off; `ssp_serve` and `--trace`
/// enable it. Safe to flip from any thread.
bool metrics_enabled() noexcept;
void set_metrics_enabled(bool on) noexcept;

/// Monotonically increasing counter (use for event counts and summed
/// nanoseconds). No-ops when metrics are disabled.
void counter_add(MetricId id, std::uint64_t delta) noexcept;

/// Last-writer-wins instantaneous value (queue depths, sizes).
void gauge_set(MetricId id, std::int64_t value) noexcept;
void gauge_add(MetricId id, std::int64_t delta) noexcept;

/// Record one sample into a power-of-two-bucket histogram. `value` must
/// be non-negative; pick a unit (the serve layer uses microseconds).
void histogram_observe(MetricId id, double value) noexcept;

/// Runtime-composed-name variants for labels only known at run time
/// (e.g. "scale.block.3.stage.embedding.ns"). The name (truncated to
/// the slot's fixed buffer) is copied into the registry, so the caller
/// may pass a stack buffer.
void counter_add_named(std::string_view name, std::uint64_t delta) noexcept;
void histogram_observe_named(std::string_view name, double value) noexcept;

/// Read-only view of one histogram's state, valid only inside visit().
struct HistogramView {
  static constexpr int kBuckets = 44;
  const std::uint64_t* buckets;  ///< kBuckets relaxed-loaded counts
  std::uint64_t count;
  double sum;
  /// Upper bound (2^(i+1)) of the bucket where the cumulative count
  /// first reaches ceil(q * count); 0 when empty.
  double percentile(double q) const noexcept;
};

/// One live metric, passed to the visit() callback. `name` points into
/// the registry slot and remains valid for the process lifetime.
struct MetricEntry {
  const char* name;
  MetricKind kind;
  std::uint64_t counter;  ///< kCounter
  std::int64_t gauge;     ///< kGauge
  HistogramView hist;     ///< kHistogram
};

/// Walk every registered metric in name order-of-registration. The
/// callback must not re-enter the registry. Allocation-free; values are
/// relaxed snapshots (exact once writers are quiescent).
void visit_metrics(void (*fn)(const MetricEntry&, void*), void* ctx);

/// Convenience wrapper for lambdas/functors.
template <typename F>
void for_each_metric(F&& fn) {
  visit_metrics(
      [](const MetricEntry& e, void* ctx) { (*static_cast<F*>(ctx))(e); },
      &fn);
}

/// Number of registered metrics (registration persists across
/// enable/disable and reset of values).
int metric_count() noexcept;

/// Zero every value and drop every registration. Test-only: callers
/// must guarantee no concurrent writers.
void reset_metrics_for_tests() noexcept;

}  // namespace ssp::obs
