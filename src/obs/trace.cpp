#include "obs/trace.hpp"

#ifndef SSP_OBS_NO_TRACE

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <ostream>

namespace ssp::obs {

namespace {

struct TraceEvent {
  const char* name;
  const char* arg_name;
  std::int64_t arg;
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
};

/// One ring per recording thread. Writers publish with a release store
/// of the new count so a quiesced reader (acquire load) sees complete
/// events; a ring that wraps keeps the newest kCapacity spans.
struct ThreadBuffer {
  static constexpr std::uint64_t kCapacity = 8192;
  TraceEvent events[kCapacity];
  std::atomic<std::uint64_t> count{0};
  int tid = 0;

  void push(const TraceEvent& e) noexcept {
    const std::uint64_t n = count.load(std::memory_order_relaxed);
    events[n % kCapacity] = e;
    count.store(n + 1, std::memory_order_release);
  }
};

constexpr int kMaxThreads = 256;
ThreadBuffer* g_buffers[kMaxThreads];
int g_num_buffers = 0;          // guarded by g_reg_mu; read via acquire fence
std::atomic<int> g_num_published{0};
std::mutex g_reg_mu;

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_epoch_ns{0};

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// First span on a thread allocates its ring (never freed: flushing
/// must outlive thread exit) and registers it. Every later span is
/// allocation-free.
ThreadBuffer* local_buffer() noexcept {
  static thread_local ThreadBuffer* buf = [] {
    auto* b = new ThreadBuffer();
    std::lock_guard<std::mutex> lock(g_reg_mu);
    if (g_num_buffers < kMaxThreads) {
      b->tid = g_num_buffers + 1;
      g_buffers[g_num_buffers] = b;
      ++g_num_buffers;
      g_num_published.store(g_num_buffers, std::memory_order_release);
    }
    return b;  // tid 0: table full, ring records but is never flushed
  }();
  return buf;
}

void escape_into(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      os << buf;
    } else {
      os << c;
    }
  }
}

}  // namespace

bool trace_enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

void start_trace() noexcept {
  std::lock_guard<std::mutex> lock(g_reg_mu);
  for (int i = 0; i < g_num_buffers; ++i) {
    g_buffers[i]->count.store(0, std::memory_order_relaxed);
  }
  g_epoch_ns.store(now_ns(), std::memory_order_relaxed);
  g_enabled.store(true, std::memory_order_relaxed);
}

void stop_trace() noexcept { g_enabled.store(false, std::memory_order_relaxed); }

void emit_span(const char* name, double seconds, const char* arg_name,
               std::int64_t arg) noexcept {
  if (!trace_enabled()) return;
  const std::uint64_t end = now_ns();
  const auto dur = seconds > 0.0
                       ? static_cast<std::uint64_t>(seconds * 1e9)
                       : std::uint64_t{0};
  const std::uint64_t epoch = g_epoch_ns.load(std::memory_order_relaxed);
  std::uint64_t start = end > dur ? end - dur : 0;
  if (start < epoch) start = epoch;  // clamp spans that predate the trace
  local_buffer()->push({name, arg_name, arg, start, end - start});
}

Span::Span(const char* name, const char* arg_name, std::int64_t arg) noexcept
    : name_(name),
      arg_name_(arg_name),
      arg_(arg),
      start_ns_(0),
      armed_(trace_enabled()) {
  if (armed_) start_ns_ = now_ns();
}

Span::~Span() {
  if (!armed_ || !trace_enabled()) return;
  const std::uint64_t end = now_ns();
  local_buffer()->push(
      {name_, arg_name_, arg_, start_ns_, end > start_ns_ ? end - start_ns_ : 0});
}

void write_chrome_trace(std::ostream& os) {
  // Readers only touch rings already published (acquire), and flushing
  // happens after writers quiesce, so event payloads are stable.
  const int n = g_num_published.load(std::memory_order_acquire);
  const std::uint64_t epoch = g_epoch_ns.load(std::memory_order_relaxed);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char num[64];
  for (int i = 0; i < n; ++i) {
    const ThreadBuffer& tb = *g_buffers[i];
    if (tb.tid == 0) continue;
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tb.tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"ssp-thread-"
       << tb.tid << "\"}}";
    const std::uint64_t total = tb.count.load(std::memory_order_acquire);
    const std::uint64_t kept =
        total < ThreadBuffer::kCapacity ? total : ThreadBuffer::kCapacity;
    for (std::uint64_t k = total - kept; k < total; ++k) {
      const TraceEvent& e = tb.events[k % ThreadBuffer::kCapacity];
      const double ts_us =
          e.start_ns >= epoch
              ? static_cast<double>(e.start_ns - epoch) / 1000.0
              : 0.0;
      const double dur_us = static_cast<double>(e.dur_ns) / 1000.0;
      os << ",{\"ph\":\"X\",\"cat\":\"ssp\",\"pid\":1,\"tid\":" << tb.tid
         << ",\"name\":\"";
      escape_into(os, e.name);
      std::snprintf(num, sizeof(num), "\",\"ts\":%.3f,\"dur\":%.3f", ts_us,
                    dur_us);
      os << num;
      if (e.arg_name != nullptr) {
        os << ",\"args\":{\"";
        escape_into(os, e.arg_name);
        os << "\":" << e.arg << '}';
      }
      os << '}';
    }
    if (total > kept) {
      os << ",{\"ph\":\"M\",\"pid\":1,\"tid\":" << tb.tid
         << ",\"name\":\"process_labels\",\"args\":{\"labels\":\"dropped "
         << (total - kept) << " spans (ring wrapped)\"}}";
    }
  }
  os << "]}\n";
}

bool write_trace_file(const std::string& path) {
  stop_trace();
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "trace: cannot open %s for writing\n", path.c_str());
    return false;
  }
  write_chrome_trace(out);
  out.flush();
  if (!out) {
    std::fprintf(stderr, "trace: write to %s failed\n", path.c_str());
    return false;
  }
  return true;
}

std::uint64_t trace_span_count() noexcept {
  const int n = g_num_published.load(std::memory_order_acquire);
  std::uint64_t total = 0;
  for (int i = 0; i < n; ++i) {
    total += g_buffers[i]->count.load(std::memory_order_acquire);
  }
  return total;
}

}  // namespace ssp::obs

#endif  // SSP_OBS_NO_TRACE
