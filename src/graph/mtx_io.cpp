#include "graph/mtx_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/connectivity.hpp"
#include "graph/laplacian.hpp"
#include "util/assert.hpp"

namespace ssp {

namespace {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

[[noreturn]] void fail(const std::string& msg) {
  throw std::runtime_error("matrix market: " + msg);
}

struct Header {
  bool pattern = false;
  bool symmetric = false;
  bool skew = false;
};

Header parse_header(const std::string& line) {
  std::istringstream is(line);
  std::string banner, object, format, field, symmetry;
  is >> banner >> object >> format >> field >> symmetry;
  if (to_lower(banner) != "%%matrixmarket") fail("missing %%MatrixMarket banner");
  if (to_lower(object) != "matrix") fail("only 'matrix' objects supported");
  if (to_lower(format) != "coordinate") fail("only 'coordinate' format supported");
  Header h;
  const std::string f = to_lower(field);
  if (f == "pattern") {
    h.pattern = true;
  } else if (f != "real" && f != "integer") {
    fail("unsupported field type '" + field + "'");
  }
  const std::string s = to_lower(symmetry);
  if (s == "symmetric") {
    h.symmetric = true;
  } else if (s == "skew-symmetric") {
    h.symmetric = true;
    h.skew = true;
  } else if (s != "general") {
    fail("unsupported symmetry '" + symmetry + "'");
  }
  return h;
}

}  // namespace

CsrMatrix read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) fail("empty stream");
  const Header h = parse_header(line);

  // Skip comments / blanks to the size line.
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    break;
  }
  std::istringstream sizes(line);
  Index rows = 0, cols = 0, nnz = 0;
  if (!(sizes >> rows >> cols >> nnz)) fail("malformed size line");
  if (rows < 0 || cols < 0 || nnz < 0) fail("negative sizes");

  std::vector<Triplet> ts;
  ts.reserve(static_cast<std::size_t>(h.symmetric ? 2 * nnz : nnz));
  Index seen = 0;
  while (seen < nnz) {
    if (!std::getline(in, line)) fail("unexpected end of data");
    if (line.empty() || line[0] == '%') continue;
    std::istringstream es(line);
    Index r = 0, c = 0;
    double v = 1.0;
    if (!(es >> r >> c)) fail("malformed entry line");
    if (!h.pattern && !(es >> v)) fail("missing value");
    if (r < 1 || r > rows || c < 1 || c > cols) fail("entry index out of range");
    ts.push_back({r - 1, c - 1, v});
    if (h.symmetric && r != c) {
      ts.push_back({c - 1, r - 1, h.skew ? -v : v});
    }
    ++seen;
  }
  return CsrMatrix::from_triplets(rows, cols, ts);
}

CsrMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const CsrMatrix& a) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.rows() << ' ' << a.cols() << ' ' << a.nnz() << '\n';
  out.precision(17);
  for (Index r = 0; r < a.rows(); ++r) {
    const auto cols = a.row_cols(r);
    const auto vals = a.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      out << (r + 1) << ' ' << (cols[k] + 1) << ' ' << vals[k] << '\n';
    }
  }
}

void write_matrix_market_file(const std::string& path, const CsrMatrix& a) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open '" + path + "' for writing");
  write_matrix_market(out, a);
}

Graph load_graph_mtx(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  // Peek at the header to learn whether values exist.
  std::string first;
  if (!std::getline(in, first)) throw std::runtime_error("empty file");
  const bool pattern =
      to_lower(first).find("pattern") != std::string::npos;
  in.seekg(0);
  const CsrMatrix a = read_matrix_market(in);
  // graph_from_matrix applies the paper's §4 magnitude rule uniformly
  // (negative, skew-mirrored, and upper-triangle-only entries all become
  // positive weights) and throws on non-finite values, so any graph that
  // reaches this point has strictly positive edge weights.
  const Graph g = graph_from_matrix(a, pattern);
  if (g.num_edges() == 0) {
    throw std::runtime_error(
        "matrix market: '" + path +
        "' contains no usable off-diagonal entries — the §4 conversion "
        "produced an edgeless graph");
  }
  return largest_component(g);
}

void save_graph_mtx(const std::string& path, const GraphView& g) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open '" + path + "' for writing");
  out << "%%MatrixMarket matrix coordinate real symmetric\n";
  out << g.num_vertices() << ' ' << g.num_vertices() << ' ' << g.num_edges()
      << '\n';
  out.precision(17);
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    const Edge e = g.edge(id);
    const Vertex lo = std::min(e.u, e.v);
    const Vertex hi = std::max(e.u, e.v);
    out << (hi + 1) << ' ' << (lo + 1) << ' ' << e.weight << '\n';
  }
}

}  // namespace ssp
