#pragma once

/// \file connectivity.hpp
/// Connected-component analysis. The sparsification pipeline requires a
/// connected input graph (spanning tree + pencil spectra are defined on one
/// component); `largest_component` extracts a usable graph from arbitrary
/// inputs such as Matrix Market files.

#include <vector>

#include "graph/graph.hpp"
#include "util/types.hpp"

namespace ssp {

/// Labels each vertex with a component id in [0, num_components).
/// The graph must be finalized.
struct ComponentLabels {
  std::vector<Vertex> label;  ///< per-vertex component id
  Vertex num_components = 0;
};

[[nodiscard]] ComponentLabels connected_components(const Graph& g);

/// True when the graph has exactly one connected component (and >= 1 vertex).
[[nodiscard]] bool is_connected(const Graph& g);

/// Extracts the largest connected component as a new graph with compacted
/// vertex ids. When `new_to_old` is non-null it receives, for each new
/// vertex, the original vertex id.
[[nodiscard]] Graph largest_component(const Graph& g,
                                      std::vector<Vertex>* new_to_old = nullptr);

/// Makes `g` connected by linking consecutive component representatives with
/// edges of weight `link_weight`. Returns the number of edges added.
Index connect_components(Graph& g, double link_weight = 1.0);

}  // namespace ssp
