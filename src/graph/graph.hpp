#pragma once

/// \file graph.hpp
/// Weighted undirected graph — the central data structure of the library.
///
/// A `Graph` is an edge list plus (after `finalize()`) a CSR adjacency
/// structure in struct-of-arrays layout. Edge identifiers are stable indices
/// into the edge list; the sparsification pipeline uses them to mark tree /
/// off-tree / selected edges without copying the graph.
///
/// Invariants: no self-loops, strictly positive weights, vertex ids in
/// [0, num_vertices). Parallel edges are permitted at assembly time
/// (generators may produce them); `coalesce_parallel_edges()` merges them by
/// summing weights, and `laplacian()` is correct either way.

#include <span>
#include <vector>

#include "util/assert.hpp"
#include "util/types.hpp"

namespace ssp {

/// One undirected edge {u, v} with positive weight.
struct Edge {
  Vertex u = kInvalidVertex;
  Vertex v = kInvalidVertex;
  double weight = 0.0;
};

class Graph {
 public:
  Graph() = default;

  /// Creates a graph with `n` isolated vertices.
  explicit Graph(Vertex n);

  [[nodiscard]] Vertex num_vertices() const { return n_; }
  [[nodiscard]] EdgeId num_edges() const {
    return static_cast<EdgeId>(edges_.size());
  }

  /// Appends the undirected edge {u, v} with weight `w` (> 0); returns its
  /// id. Invalidates the adjacency structure until the next finalize().
  EdgeId add_edge(Vertex u, Vertex v, double w);

  /// Removes the edges in `edge_ids` (valid, pairwise distinct; any order).
  /// Surviving edges keep their relative order but are renumbered densely;
  /// the returned vector maps every old edge id to its new id
  /// (`kInvalidEdge` for removed edges). Invalidates the adjacency
  /// structure until the next finalize() unless `edge_ids` is empty.
  std::vector<EdgeId> remove_edges(std::span<const EdgeId> edge_ids);

  /// Replaces the weight of edge `e` with `w` (> 0, finite). Keeps the
  /// adjacency structure valid when already finalized (the CSR weight
  /// slots and weighted degrees are patched in place).
  void set_weight(EdgeId e, double w);

  /// Id of an edge joining `u` and `v` (either orientation), or
  /// `kInvalidEdge` when they are not adjacent. With parallel edges the
  /// lowest id wins. Requires finalize().
  [[nodiscard]] EdgeId find_edge(Vertex u, Vertex v) const;

  /// The edge with identifier `e`.
  [[nodiscard]] const Edge& edge(EdgeId e) const;

  /// All edges in id order.
  [[nodiscard]] std::span<const Edge> edges() const { return edges_; }

  /// Builds the CSR adjacency arrays. Idempotent; cheap when already built.
  void finalize();

  [[nodiscard]] bool finalized() const { return finalized_; }

  /// Merges parallel edges (same endpoints) by summing their weights.
  /// Edge ids are renumbered; adjacency is rebuilt lazily.
  void coalesce_parallel_edges();

  /// Lightweight view over the neighbors of one vertex (valid after
  /// finalize(); invalidated by add_edge / coalesce).
  class NeighborRange {
   public:
    struct Item {
      Vertex neighbor;
      EdgeId edge;
      double weight;
    };

    [[nodiscard]] std::size_t size() const { return count_; }
    [[nodiscard]] Item operator[](std::size_t i) const {
      SSP_DASSERT(i < count_, "neighbor index");
      return {nbr_[i], eid_[i], w_[i]};
    }

    class Iterator {
     public:
      Iterator(const NeighborRange* r, std::size_t i) : r_(r), i_(i) {}
      Item operator*() const { return (*r_)[i_]; }
      Iterator& operator++() {
        ++i_;
        return *this;
      }
      bool operator!=(const Iterator& o) const { return i_ != o.i_; }

     private:
      const NeighborRange* r_;
      std::size_t i_;
    };
    [[nodiscard]] Iterator begin() const { return {this, 0}; }
    [[nodiscard]] Iterator end() const { return {this, count_}; }

   private:
    friend class Graph;
    friend class GraphView;
    NeighborRange(const Vertex* nbr, const EdgeId* eid, const double* w,
                  std::size_t count)
        : nbr_(nbr), eid_(eid), w_(w), count_(count) {}
    const Vertex* nbr_;
    const EdgeId* eid_;
    const double* w_;
    std::size_t count_;
  };

  /// Neighbors of `v`. Requires finalize() to have been called.
  [[nodiscard]] NeighborRange neighbors(Vertex v) const;

  /// Unweighted degree of `v` (requires finalize()).
  [[nodiscard]] Index degree(Vertex v) const;

  /// Sum of incident edge weights = L(v, v) (requires finalize()).
  [[nodiscard]] double weighted_degree(Vertex v) const;

  /// Sum of all edge weights.
  [[nodiscard]] double total_weight() const;

  /// New graph on the same vertex set containing exactly the edges in
  /// `edge_ids` (in the given order — the new edge k corresponds to
  /// edge_ids[k] in this graph). The result is finalized.
  [[nodiscard]] Graph edge_subgraph(std::span<const EdgeId> edge_ids) const;

 private:
  /// GraphView (graph/graph_view.hpp) borrows the private CSR arrays to
  /// present heap graphs and mmap'd `.sspb` graphs behind one interface.
  friend class GraphView;

  void check_vertex(Vertex v) const;

  Vertex n_ = 0;
  std::vector<Edge> edges_;
  bool finalized_ = false;

  // CSR adjacency (struct-of-arrays), valid iff finalized_.
  std::vector<Index> adj_ptr_;
  std::vector<Vertex> adj_nbr_;
  std::vector<EdgeId> adj_eid_;
  std::vector<double> adj_w_;
  std::vector<double> weighted_degree_;
};

}  // namespace ssp
