#include "graph/generators/airfoil.hpp"

#include <cmath>
#include <complex>

#include "util/assert.hpp"

namespace ssp {

Mesh2d joukowski_airfoil_mesh(Vertex n_radial, Vertex n_around) {
  SSP_REQUIRE(n_radial >= 2, "airfoil mesh needs >= 2 rings");
  SSP_REQUIRE(n_around >= 8, "airfoil mesh needs >= 8 points per ring");

  // Circle-plane parameters: the generating circle passes through ζ = c
  // (sharp trailing edge) and is offset to produce thickness and camber.
  const double c = 1.0;
  const std::complex<double> center(-0.08, 0.06);
  const double r0 = std::abs(std::complex<double>(c, 0.0) - center);
  const double r1 = 6.0;  // far-field radius

  Mesh2d mesh;
  const Vertex n = n_radial * n_around;
  mesh.graph = Graph(n);
  mesh.x.resize(static_cast<std::size_t>(n));
  mesh.y.resize(static_cast<std::size_t>(n));

  auto id = [n_around](Vertex ring, Vertex k) {
    return ring * n_around + k;
  };

  for (Vertex ring = 0; ring < n_radial; ++ring) {
    // Geometric radial grading clusters rings near the airfoil surface.
    const double t = static_cast<double>(ring) /
                     static_cast<double>(n_radial - 1);
    const double r = r0 * std::pow(r1 / r0, t);
    for (Vertex k = 0; k < n_around; ++k) {
      const double theta =
          2.0 * M_PI * static_cast<double>(k) / static_cast<double>(n_around);
      const std::complex<double> zeta =
          center + std::polar(r, theta);
      const std::complex<double> z = zeta + (c * c) / zeta;
      mesh.x[static_cast<std::size_t>(id(ring, k))] = z.real();
      mesh.y[static_cast<std::size_t>(id(ring, k))] = z.imag();
    }
  }

  auto add = [&mesh](Vertex a, Vertex b) {
    const double dx = mesh.x[static_cast<std::size_t>(a)] -
                      mesh.x[static_cast<std::size_t>(b)];
    const double dy = mesh.y[static_cast<std::size_t>(a)] -
                      mesh.y[static_cast<std::size_t>(b)];
    const double len = std::sqrt(dx * dx + dy * dy);
    // Coincident mapped points (numerically possible only at the trailing
    // edge cusp) get a strong finite weight instead of infinity.
    const double w = len > 1e-12 ? 1.0 / len : 1e12;
    mesh.graph.add_edge(a, b, w);
  };

  for (Vertex ring = 0; ring < n_radial; ++ring) {
    for (Vertex k = 0; k < n_around; ++k) {
      const Vertex k_next = static_cast<Vertex>((k + 1) % n_around);
      add(id(ring, k), id(ring, k_next));  // circumferential
      if (ring + 1 < n_radial) {
        add(id(ring, k), id(ring + 1, k));  // radial
        // Triangulating diagonal, alternating orientation.
        if ((ring + k) % 2 == 0) {
          add(id(ring, k), id(ring + 1, k_next));
        } else {
          add(id(ring, k_next), id(ring + 1, k));
        }
      }
    }
  }
  mesh.graph.finalize();
  return mesh;
}

}  // namespace ssp
