#include "graph/generators/lattice.hpp"

namespace ssp {

namespace {

/// Shared weight-drawing shim: unit model needs no RNG.
double next_weight(const WeightModel& w, Rng* rng) {
  if (w.kind == WeightModel::Kind::kUnit) return 1.0;
  SSP_REQUIRE(rng != nullptr, "non-unit weight model requires an Rng");
  return draw_weight(w, *rng);
}

}  // namespace

Graph grid_2d(Vertex nx, Vertex ny, const WeightModel& w, Rng* rng) {
  SSP_REQUIRE(nx >= 1 && ny >= 1, "grid_2d: dimensions must be >= 1");
  Graph g(nx * ny);
  auto id = [ny](Vertex i, Vertex j) { return i * ny + j; };
  for (Vertex i = 0; i < nx; ++i) {
    for (Vertex j = 0; j < ny; ++j) {
      if (i + 1 < nx) g.add_edge(id(i, j), id(i + 1, j), next_weight(w, rng));
      if (j + 1 < ny) g.add_edge(id(i, j), id(i, j + 1), next_weight(w, rng));
    }
  }
  g.finalize();
  return g;
}

Graph grid_2d_8(Vertex nx, Vertex ny, const WeightModel& w, Rng* rng) {
  SSP_REQUIRE(nx >= 1 && ny >= 1, "grid_2d_8: dimensions must be >= 1");
  Graph g(nx * ny);
  auto id = [ny](Vertex i, Vertex j) { return i * ny + j; };
  for (Vertex i = 0; i < nx; ++i) {
    for (Vertex j = 0; j < ny; ++j) {
      if (i + 1 < nx) g.add_edge(id(i, j), id(i + 1, j), next_weight(w, rng));
      if (j + 1 < ny) g.add_edge(id(i, j), id(i, j + 1), next_weight(w, rng));
      if (i + 1 < nx && j + 1 < ny) {
        g.add_edge(id(i, j), id(i + 1, j + 1), next_weight(w, rng));
        g.add_edge(id(i + 1, j), id(i, j + 1), next_weight(w, rng));
      }
    }
  }
  g.finalize();
  return g;
}

Graph triangulated_grid(Vertex nx, Vertex ny, const WeightModel& w,
                        Rng* rng) {
  SSP_REQUIRE(nx >= 1 && ny >= 1, "triangulated_grid: dimensions must be >= 1");
  Graph g(nx * ny);
  auto id = [ny](Vertex i, Vertex j) { return i * ny + j; };
  for (Vertex i = 0; i < nx; ++i) {
    for (Vertex j = 0; j < ny; ++j) {
      if (i + 1 < nx) g.add_edge(id(i, j), id(i + 1, j), next_weight(w, rng));
      if (j + 1 < ny) g.add_edge(id(i, j), id(i, j + 1), next_weight(w, rng));
      // Alternate diagonal orientation per cell parity ("union-jack" free).
      if (i + 1 < nx && j + 1 < ny) {
        if ((i + j) % 2 == 0) {
          g.add_edge(id(i, j), id(i + 1, j + 1), next_weight(w, rng));
        } else {
          g.add_edge(id(i + 1, j), id(i, j + 1), next_weight(w, rng));
        }
      }
    }
  }
  g.finalize();
  return g;
}

Graph grid_3d(Vertex nx, Vertex ny, Vertex nz, const WeightModel& w,
              Rng* rng) {
  SSP_REQUIRE(nx >= 1 && ny >= 1 && nz >= 1,
              "grid_3d: dimensions must be >= 1");
  Graph g(nx * ny * nz);
  auto id = [ny, nz](Vertex i, Vertex j, Vertex k) {
    return (i * ny + j) * nz + k;
  };
  for (Vertex i = 0; i < nx; ++i) {
    for (Vertex j = 0; j < ny; ++j) {
      for (Vertex k = 0; k < nz; ++k) {
        if (i + 1 < nx) {
          g.add_edge(id(i, j, k), id(i + 1, j, k), next_weight(w, rng));
        }
        if (j + 1 < ny) {
          g.add_edge(id(i, j, k), id(i, j + 1, k), next_weight(w, rng));
        }
        if (k + 1 < nz) {
          g.add_edge(id(i, j, k), id(i, j, k + 1), next_weight(w, rng));
        }
      }
    }
  }
  g.finalize();
  return g;
}

Graph torus_2d(Vertex nx, Vertex ny, const WeightModel& w, Rng* rng) {
  SSP_REQUIRE(nx >= 3 && ny >= 3, "torus_2d: dimensions must be >= 3");
  Graph g(nx * ny);
  auto id = [ny](Vertex i, Vertex j) { return i * ny + j; };
  for (Vertex i = 0; i < nx; ++i) {
    for (Vertex j = 0; j < ny; ++j) {
      g.add_edge(id(i, j), id((i + 1) % nx, j), next_weight(w, rng));
      g.add_edge(id(i, j), id(i, (j + 1) % ny), next_weight(w, rng));
    }
  }
  g.finalize();
  return g;
}

Graph torus_3d(Vertex nx, Vertex ny, Vertex nz, const WeightModel& w,
               Rng* rng) {
  SSP_REQUIRE(nx >= 3 && ny >= 3 && nz >= 3,
              "torus_3d: dimensions must be >= 3");
  Graph g(nx * ny * nz);
  auto id = [ny, nz](Vertex i, Vertex j, Vertex k) {
    return (i * ny + j) * nz + k;
  };
  for (Vertex i = 0; i < nx; ++i) {
    for (Vertex j = 0; j < ny; ++j) {
      for (Vertex k = 0; k < nz; ++k) {
        g.add_edge(id(i, j, k), id((i + 1) % nx, j, k), next_weight(w, rng));
        g.add_edge(id(i, j, k), id(i, (j + 1) % ny, k), next_weight(w, rng));
        g.add_edge(id(i, j, k), id(i, j, (k + 1) % nz), next_weight(w, rng));
      }
    }
  }
  g.finalize();
  return g;
}

Graph path_graph(Vertex n, const WeightModel& w, Rng* rng) {
  SSP_REQUIRE(n >= 1, "path_graph: n must be >= 1");
  Graph g(n);
  for (Vertex i = 0; i + 1 < n; ++i) {
    g.add_edge(i, i + 1, next_weight(w, rng));
  }
  g.finalize();
  return g;
}

Graph cycle_graph(Vertex n, const WeightModel& w, Rng* rng) {
  SSP_REQUIRE(n >= 3, "cycle_graph: n must be >= 3");
  Graph g(n);
  for (Vertex i = 0; i < n; ++i) {
    g.add_edge(i, (i + 1) % n, next_weight(w, rng));
  }
  g.finalize();
  return g;
}

Graph star_graph(Vertex n, const WeightModel& w, Rng* rng) {
  SSP_REQUIRE(n >= 2, "star_graph: n must be >= 2");
  Graph g(n);
  for (Vertex i = 1; i < n; ++i) g.add_edge(0, i, next_weight(w, rng));
  g.finalize();
  return g;
}

Graph complete_graph(Vertex n, const WeightModel& w, Rng* rng) {
  SSP_REQUIRE(n >= 2, "complete_graph: n must be >= 2");
  Graph g(n);
  for (Vertex i = 0; i < n; ++i) {
    for (Vertex j = i + 1; j < n; ++j) g.add_edge(i, j, next_weight(w, rng));
  }
  g.finalize();
  return g;
}

}  // namespace ssp
