#pragma once

/// \file rmat.hpp
/// R-MAT (recursive matrix) generator [Chakrabarti–Zhan–Faloutsos] — the
/// standard scale-free + community-structured random graph model behind
/// the Graph500 benchmark. Complements Barabási–Albert for the paper's
/// social/data-network experiments: R-MAT graphs additionally exhibit the
/// hierarchical clustering real networks show.

#include "graph/generators/weights.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace ssp {

struct RmatOptions {
  /// Quadrant probabilities (must sum to ~1; classic Graph500 values).
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
  /// Perturb quadrant probabilities per level (reduces degree artifacts).
  double noise = 0.1;
};

/// Generates an R-MAT graph with 2^scale vertices and ~edge_factor·2^scale
/// distinct edges, restricted to its largest connected component (isolated
/// vertices are common in R-MAT). Self-loops and duplicates are dropped.
[[nodiscard]] Graph rmat_graph(int scale, Index edge_factor, Rng& rng,
                               const RmatOptions& opts = {},
                               const WeightModel& w = WeightModel::unit());

}  // namespace ssp
