#include "graph/generators/points.hpp"

#include "util/assert.hpp"

namespace ssp {

double squared_distance(const PointCloud& pc, Index i, Index j) {
  SSP_DASSERT(i >= 0 && i < pc.n && j >= 0 && j < pc.n, "point index");
  const double* a = pc.point(i);
  const double* b = pc.point(j);
  double s = 0.0;
  for (Index k = 0; k < pc.dim; ++k) {
    const double d = a[k] - b[k];
    s += d * d;
  }
  return s;
}

PointCloud uniform_points(Index n, Index dim, Rng& rng) {
  SSP_REQUIRE(n >= 0 && dim >= 1, "uniform_points: bad sizes");
  PointCloud pc;
  pc.n = n;
  pc.dim = dim;
  pc.coords.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(dim));
  for (auto& c : pc.coords) c = rng.uniform();
  return pc;
}

PointCloud gaussian_mixture_points(Index n, Index dim, Index k, double spread,
                                   Rng& rng) {
  SSP_REQUIRE(n >= 0 && dim >= 1 && k >= 1, "gaussian_mixture_points: bad sizes");
  SSP_REQUIRE(spread > 0.0, "gaussian_mixture_points: spread must be positive");
  std::vector<double> centers(static_cast<std::size_t>(k) *
                              static_cast<std::size_t>(dim));
  for (auto& c : centers) c = rng.uniform();

  PointCloud pc;
  pc.n = n;
  pc.dim = dim;
  pc.coords.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(dim));
  for (Index i = 0; i < n; ++i) {
    const Index cluster = i % k;
    for (Index d = 0; d < dim; ++d) {
      pc.coords[static_cast<std::size_t>(i) * static_cast<std::size_t>(dim) +
                static_cast<std::size_t>(d)] =
          centers[static_cast<std::size_t>(cluster) *
                      static_cast<std::size_t>(dim) +
                  static_cast<std::size_t>(d)] +
          spread * rng.normal();
    }
  }
  return pc;
}

}  // namespace ssp
