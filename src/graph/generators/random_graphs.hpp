#pragma once

/// \file random_graphs.hpp
/// Random-graph models — proxies for the paper's social / data networks
/// (`coAuthorsDBLP` → preferential attachment, `appu` → dense uniform
/// random graph) and for adversarial test inputs.

#include "graph/generators/weights.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace ssp {

/// Barabási–Albert preferential attachment: starts from a small clique and
/// attaches each new vertex to `m` existing vertices chosen proportionally
/// to degree. Connected by construction; power-law degree tail like
/// collaboration networks.
[[nodiscard]] Graph barabasi_albert(Vertex n, Vertex m, Rng& rng,
                                    const WeightModel& w = WeightModel::unit());

/// Watts–Strogatz small world: ring lattice of even degree `k`, each edge
/// rewired with probability `beta`. Connectivity is enforced by keeping the
/// base ring intact (only the "far" endpoint rewires).
[[nodiscard]] Graph watts_strogatz(Vertex n, Vertex k, double beta, Rng& rng,
                                   const WeightModel& w = WeightModel::unit());

/// Erdős–Rényi G(n, m): uniform random simple edges on top of a uniform
/// random spanning tree, so the result is always connected (matching the
/// paper's assumption of connected inputs).
[[nodiscard]] Graph erdos_renyi_connected(Vertex n, EdgeId m, Rng& rng,
                                          const WeightModel& w =
                                              WeightModel::unit());

}  // namespace ssp
