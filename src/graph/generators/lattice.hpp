#pragma once

/// \file lattice.hpp
/// Regular lattice generators — proxies for the paper's circuit and FE mesh
/// matrices (`G3_circuit`, `thermal2`, `ecology2`, `tmt_sym`,
/// `parabolic_fem`, and the synthesized `mesh_1M/4M/9M` of Table 3).

#include "graph/generators/weights.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace ssp {

/// nx × ny 4-neighbor grid. Connected for nx, ny >= 1. Vertex (i, j) has
/// id i*ny + j.
[[nodiscard]] Graph grid_2d(Vertex nx, Vertex ny,
                            const WeightModel& w = WeightModel::unit(),
                            Rng* rng = nullptr);

/// nx × ny grid with 8-neighbor (king-move) connectivity.
[[nodiscard]] Graph grid_2d_8(Vertex nx, Vertex ny,
                              const WeightModel& w = WeightModel::unit(),
                              Rng* rng = nullptr);

/// nx × ny grid with one diagonal per cell (FE-style triangulated mesh).
[[nodiscard]] Graph triangulated_grid(Vertex nx, Vertex ny,
                                      const WeightModel& w = WeightModel::unit(),
                                      Rng* rng = nullptr);

/// nx × ny × nz 6-neighbor grid.
[[nodiscard]] Graph grid_3d(Vertex nx, Vertex ny, Vertex nz,
                            const WeightModel& w = WeightModel::unit(),
                            Rng* rng = nullptr);

/// nx × ny torus (grid with wraparound) — no boundary effects.
[[nodiscard]] Graph torus_2d(Vertex nx, Vertex ny,
                             const WeightModel& w = WeightModel::unit(),
                             Rng* rng = nullptr);

/// nx × ny × nz 3-D torus (6-neighbor with wraparound) — FE-solid-like
/// connectivity with no boundary vertices.
[[nodiscard]] Graph torus_3d(Vertex nx, Vertex ny, Vertex nz,
                             const WeightModel& w = WeightModel::unit(),
                             Rng* rng = nullptr);

/// Path on n vertices.
[[nodiscard]] Graph path_graph(Vertex n,
                               const WeightModel& w = WeightModel::unit(),
                               Rng* rng = nullptr);

/// Cycle on n (>= 3) vertices.
[[nodiscard]] Graph cycle_graph(Vertex n,
                                const WeightModel& w = WeightModel::unit(),
                                Rng* rng = nullptr);

/// Star with n-1 leaves.
[[nodiscard]] Graph star_graph(Vertex n,
                               const WeightModel& w = WeightModel::unit(),
                               Rng* rng = nullptr);

/// Complete graph K_n (n small; quadratic size).
[[nodiscard]] Graph complete_graph(Vertex n,
                                   const WeightModel& w = WeightModel::unit(),
                                   Rng* rng = nullptr);

}  // namespace ssp
