#include "graph/generators/random_graphs.hpp"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace ssp {

namespace {

double next_weight(const WeightModel& w, Rng& rng) {
  return w.kind == WeightModel::Kind::kUnit ? 1.0 : draw_weight(w, rng);
}

}  // namespace

Graph barabasi_albert(Vertex n, Vertex m, Rng& rng, const WeightModel& w) {
  SSP_REQUIRE(m >= 1, "barabasi_albert: m must be >= 1");
  SSP_REQUIRE(n > m, "barabasi_albert: n must exceed m");
  Graph g(n);
  // `targets` holds one entry per edge endpoint — sampling uniformly from it
  // realizes degree-proportional attachment.
  std::vector<Vertex> endpoint_pool;
  endpoint_pool.reserve(static_cast<std::size_t>(2) *
                        static_cast<std::size_t>(n) *
                        static_cast<std::size_t>(m));

  // Seed: clique on the first m+1 vertices.
  for (Vertex i = 0; i <= m; ++i) {
    for (Vertex j = i + 1; j <= m; ++j) {
      g.add_edge(i, j, next_weight(w, rng));
      endpoint_pool.push_back(i);
      endpoint_pool.push_back(j);
    }
  }

  std::vector<Vertex> chosen;
  for (Vertex v = m + 1; v < n; ++v) {
    chosen.clear();
    // Sample m distinct existing vertices ∝ degree.
    std::set<Vertex> distinct;
    int guard = 0;
    while (static_cast<Vertex>(distinct.size()) < m) {
      const auto idx = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(endpoint_pool.size()) - 1));
      distinct.insert(endpoint_pool[idx]);
      // Degenerate pools (tiny graphs) cannot stall: fall back to uniform.
      if (++guard > 64 * m) {
        for (Vertex u = 0; u < v && static_cast<Vertex>(distinct.size()) < m;
             ++u) {
          distinct.insert(u);
        }
      }
    }
    for (Vertex target : distinct) {
      g.add_edge(v, target, next_weight(w, rng));
      endpoint_pool.push_back(v);
      endpoint_pool.push_back(target);
    }
  }
  g.finalize();
  return g;
}

Graph watts_strogatz(Vertex n, Vertex k, double beta, Rng& rng,
                     const WeightModel& w) {
  SSP_REQUIRE(n >= 4, "watts_strogatz: n must be >= 4");
  SSP_REQUIRE(k >= 2 && k % 2 == 0, "watts_strogatz: k must be even >= 2");
  SSP_REQUIRE(k < n, "watts_strogatz: k must be < n");
  SSP_REQUIRE(beta >= 0.0 && beta <= 1.0, "watts_strogatz: beta in [0,1]");

  Graph g(n);
  std::set<std::pair<Vertex, Vertex>> present;
  auto key = [](Vertex a, Vertex b) {
    return std::make_pair(std::min(a, b), std::max(a, b));
  };
  auto try_add = [&](Vertex a, Vertex b) {
    if (a == b) return false;
    const auto kk = key(a, b);
    if (present.count(kk) != 0) return false;
    present.insert(kk);
    g.add_edge(a, b, next_weight(w, rng));
    return true;
  };

  for (Vertex i = 0; i < n; ++i) {
    for (Vertex d = 1; d <= k / 2; ++d) {
      const Vertex j = static_cast<Vertex>((i + d) % n);
      if (d == 1) {
        try_add(i, j);  // base ring is never rewired -> connected
        continue;
      }
      if (rng.uniform() < beta) {
        // Rewire to a uniform random non-duplicate target.
        bool added = false;
        for (int attempt = 0; attempt < 32 && !added; ++attempt) {
          const auto t = static_cast<Vertex>(rng.uniform_int(0, n - 1));
          added = try_add(i, t);
        }
        if (!added) try_add(i, j);  // fall back to lattice edge
      } else {
        try_add(i, j);
      }
    }
  }
  g.finalize();
  return g;
}

Graph erdos_renyi_connected(Vertex n, EdgeId m, Rng& rng,
                            const WeightModel& w) {
  SSP_REQUIRE(n >= 2, "erdos_renyi_connected: n must be >= 2");
  SSP_REQUIRE(m >= n - 1, "erdos_renyi_connected: need m >= n-1 edges");
  Graph g(n);
  std::set<std::pair<Vertex, Vertex>> present;
  auto key = [](Vertex a, Vertex b) {
    return std::make_pair(std::min(a, b), std::max(a, b));
  };

  // Uniform random attachment tree (random recursive tree): connected base.
  for (Vertex v = 1; v < n; ++v) {
    const auto parent = static_cast<Vertex>(rng.uniform_int(0, v - 1));
    present.insert(key(v, parent));
    g.add_edge(v, parent, next_weight(w, rng));
  }
  // Fill with uniform random distinct edges.
  EdgeId added = n - 1;
  const EdgeId max_possible =
      static_cast<EdgeId>(n) * (static_cast<EdgeId>(n) - 1) / 2;
  SSP_REQUIRE(m <= max_possible, "erdos_renyi_connected: m exceeds simple-graph bound");
  while (added < m) {
    const auto a = static_cast<Vertex>(rng.uniform_int(0, n - 1));
    const auto b = static_cast<Vertex>(rng.uniform_int(0, n - 1));
    if (a == b) continue;
    const auto kk = key(a, b);
    if (present.count(kk) != 0) continue;
    present.insert(kk);
    g.add_edge(a, b, next_weight(w, rng));
    ++added;
  }
  g.finalize();
  return g;
}

}  // namespace ssp
