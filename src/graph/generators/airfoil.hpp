#pragma once

/// \file airfoil.hpp
/// Structured finite-element mesh around a Joukowski airfoil — the proxy
/// for the paper's `airfoil` graph (Fig. 1 spectral drawings) and for the
/// FE matrices of Tables 1 and 4.
///
/// Construction: an O-mesh in the circle plane (annulus r ∈ [r0, r1],
/// θ ∈ [0, 2π)) is mapped through the Joukowski transform
/// z = ζ + c²/ζ with the circle offset so its image is a cambered airfoil.
/// Grid cells are triangulated; edge weights are inverse Euclidean lengths
/// (the standard 1/h FE stiffness surrogate), so cells crowded near the
/// trailing edge get strong weights — the same weight heterogeneity real FE
/// matrices show.

#include <vector>

#include "graph/graph.hpp"

namespace ssp {

/// A generated mesh: the graph plus 2-D coordinates (for drawing tests and
/// the Fig. 1 bench output).
struct Mesh2d {
  Graph graph;
  std::vector<double> x;  ///< per-vertex x coordinate
  std::vector<double> y;  ///< per-vertex y coordinate
};

/// O-mesh with `n_radial` rings × `n_around` points per ring
/// (n_radial >= 2, n_around >= 8). Vertices: n_radial * n_around.
[[nodiscard]] Mesh2d joukowski_airfoil_mesh(Vertex n_radial, Vertex n_around);

}  // namespace ssp
