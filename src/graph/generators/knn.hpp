#pragma once

/// \file knn.hpp
/// k-nearest-neighbor similarity graphs over point clouds (paper's
/// `RCV-80NN` proxy and general machine-learning workloads).

#include "graph/generators/points.hpp"
#include "graph/graph.hpp"

namespace ssp {

/// How kNN edges are weighted.
enum class KnnWeight {
  kUnit,                ///< 1.0
  kInverseDistance,     ///< 1 / (dist + eps)
  kGaussianSimilarity,  ///< exp(-dist² / (2 s²)), s = mean kNN distance
};

/// Builds the symmetrized (union) k-nearest-neighbor graph of `pc`
/// (brute-force O(n² d); intended for n up to a few 10⁴). Parallel edges
/// from mutual neighbors are merged keeping one edge. When
/// `ensure_connected` is set, components are linked through their closest
/// representative pair so the pipeline's connected-input requirement holds.
[[nodiscard]] Graph knn_graph(const PointCloud& pc, Index k,
                              KnnWeight weight = KnnWeight::kGaussianSimilarity,
                              bool ensure_connected = true);

}  // namespace ssp
