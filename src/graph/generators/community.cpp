#include "graph/generators/community.hpp"

#include <algorithm>
#include <set>

#include "util/assert.hpp"

namespace ssp {

Graph planted_partition(Vertex n, Vertex communities, double p_in,
                        double p_out, Rng& rng, const WeightModel& w) {
  SSP_REQUIRE(communities >= 1 && n >= communities,
              "planted_partition: need n >= communities >= 1");
  SSP_REQUIRE(p_in >= 0.0 && p_in <= 1.0 && p_out >= 0.0 && p_out <= 1.0,
              "planted_partition: probabilities must be in [0,1]");
  const Vertex block = n / communities;
  const Vertex used = block * communities;  // drop remainder vertices
  Graph g(used);
  auto wdraw = [&] {
    return w.kind == WeightModel::Kind::kUnit ? 1.0 : draw_weight(w, rng);
  };
  std::set<std::pair<Vertex, Vertex>> present;
  auto add_once = [&](Vertex a, Vertex b) {
    const auto key = std::minmax(a, b);
    if (present.insert({key.first, key.second}).second) {
      g.add_edge(a, b, wdraw());
    }
  };

  for (Vertex i = 0; i < used; ++i) {
    for (Vertex j = i + 1; j < used; ++j) {
      const bool same = (i / block) == (j / block);
      const double p = same ? p_in : p_out;
      if (p > 0.0 && rng.uniform() < p) add_once(i, j);
    }
  }
  // Connectivity: path within each block, bridge between consecutive blocks.
  for (Vertex c = 0; c < communities; ++c) {
    const Vertex base = c * block;
    for (Vertex i = 0; i + 1 < block; ++i) add_once(base + i, base + i + 1);
    if (c + 1 < communities) add_once(base, base + block);
  }
  g.finalize();
  return g;
}

Graph dumbbell_graph(Vertex n_half, Index bridge_edges, double bridge_weight,
                     Rng& rng) {
  SSP_REQUIRE(n_half >= 2, "dumbbell_graph: blobs need >= 2 vertices");
  SSP_REQUIRE(bridge_edges >= 1, "dumbbell_graph: need >= 1 bridge edge");
  SSP_REQUIRE(bridge_weight > 0.0, "dumbbell_graph: bridge weight positive");
  Graph g(2 * n_half);
  // Each blob: ring + random chords (sparse expander-ish).
  auto build_blob = [&](Vertex base) {
    for (Vertex i = 0; i < n_half; ++i) {
      g.add_edge(base + i, base + (i + 1) % n_half, 1.0);
    }
    const Index chords = n_half;  // ~degree 4
    for (Index c = 0; c < chords; ++c) {
      const auto a = static_cast<Vertex>(rng.uniform_int(0, n_half - 1));
      const auto b = static_cast<Vertex>(rng.uniform_int(0, n_half - 1));
      if (a != b) g.add_edge(base + a, base + b, 1.0);
    }
  };
  build_blob(0);
  build_blob(n_half);
  for (Index e = 0; e < bridge_edges; ++e) {
    const auto a = static_cast<Vertex>(rng.uniform_int(0, n_half - 1));
    const auto b = static_cast<Vertex>(rng.uniform_int(0, n_half - 1));
    g.add_edge(a, static_cast<Vertex>(n_half + b), bridge_weight);
  }
  g.coalesce_parallel_edges();
  g.finalize();
  return g;
}

}  // namespace ssp
