#pragma once

/// \file points.hpp
/// Synthetic point clouds feeding the kNN graph generator — the proxy for
/// the paper's `RCV-80NN` (80-nearest-neighbor text corpus graph) and
/// protein-structure matrices.

#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace ssp {

/// n points in d dimensions, row-major: coords[i*dim + k].
struct PointCloud {
  Index n = 0;
  Index dim = 0;
  std::vector<double> coords;

  [[nodiscard]] const double* point(Index i) const {
    return coords.data() + static_cast<std::size_t>(i) *
                               static_cast<std::size_t>(dim);
  }
};

/// Squared Euclidean distance between points i and j of the cloud.
[[nodiscard]] double squared_distance(const PointCloud& pc, Index i, Index j);

/// Uniform points in the unit cube [0,1]^d.
[[nodiscard]] PointCloud uniform_points(Index n, Index dim, Rng& rng);

/// Gaussian-mixture cloud: `k` cluster centers uniform in the unit cube,
/// points assigned round-robin, isotropic per-cluster stddev `spread`.
/// This mimics clustered document-embedding data (RCV corpus).
[[nodiscard]] PointCloud gaussian_mixture_points(Index n, Index dim, Index k,
                                                 double spread, Rng& rng);

}  // namespace ssp
