#pragma once

/// \file community.hpp
/// Graphs with planted community structure — ground truth for the spectral
/// partitioning experiments (Table 3) and clustering tests.

#include "graph/generators/weights.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace ssp {

/// Planted-partition (stochastic block) model with `communities` equal-size
/// blocks: intra-block edge probability `p_in`, inter-block `p_out`
/// (p_in > p_out gives a detectable partition). The graph is made connected
/// by a within-block path plus one bridge per consecutive block pair, so
/// spectral bisection has a well-defined answer.
[[nodiscard]] Graph planted_partition(Vertex n, Vertex communities,
                                      double p_in, double p_out, Rng& rng,
                                      const WeightModel& w =
                                          WeightModel::unit());

/// Two dense blobs joined by `bridge_edges` weak edges — the textbook
/// bisection benchmark. Blob size `n_half` each.
[[nodiscard]] Graph dumbbell_graph(Vertex n_half, Index bridge_edges,
                                   double bridge_weight, Rng& rng);

}  // namespace ssp
