#include "graph/generators/knn.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "graph/connectivity.hpp"
#include "util/assert.hpp"

namespace ssp {

Graph knn_graph(const PointCloud& pc, Index k, KnnWeight weight,
                bool ensure_connected) {
  SSP_REQUIRE(pc.n >= 2, "knn_graph: need at least two points");
  SSP_REQUIRE(k >= 1 && k < pc.n, "knn_graph: k must be in [1, n)");

  const Index n = pc.n;
  // Collect k nearest neighbors per point (brute force with partial sort).
  std::vector<std::pair<double, Vertex>> cand(static_cast<std::size_t>(n));
  std::map<std::pair<Vertex, Vertex>, double> edges;  // unordered pair -> d²
  double mean_knn_d2 = 0.0;
  Index count_knn = 0;

  for (Index i = 0; i < n; ++i) {
    cand.clear();
    for (Index j = 0; j < n; ++j) {
      if (j == i) continue;
      cand.emplace_back(squared_distance(pc, i, j), static_cast<Vertex>(j));
    }
    std::nth_element(cand.begin(), cand.begin() + (k - 1), cand.end());
    for (Index t = 0; t < k; ++t) {
      const auto& [d2, j] = cand[static_cast<std::size_t>(t)];
      const Vertex lo = std::min(static_cast<Vertex>(i), j);
      const Vertex hi = std::max(static_cast<Vertex>(i), j);
      edges[{lo, hi}] = d2;
      mean_knn_d2 += d2;
      ++count_knn;
    }
  }
  mean_knn_d2 /= static_cast<double>(std::max<Index>(count_knn, 1));
  const double sigma2 = std::max(mean_knn_d2, 1e-300);

  auto edge_weight = [&](double d2) {
    switch (weight) {
      case KnnWeight::kUnit:
        return 1.0;
      case KnnWeight::kInverseDistance:
        return 1.0 / (std::sqrt(d2) + 1e-12);
      case KnnWeight::kGaussianSimilarity:
        // Floor keeps weights strictly positive as Graph requires.
        return std::max(std::exp(-d2 / (2.0 * sigma2)), 1e-12);
    }
    return 1.0;
  };

  Graph g(static_cast<Vertex>(n));
  for (const auto& [uv, d2] : edges) {
    g.add_edge(uv.first, uv.second, edge_weight(d2));
  }
  g.finalize();

  if (ensure_connected && !is_connected(g)) {
    // Link each non-root component to component 0 through the globally
    // closest representative pair (exact search restricted to 64 random
    // members per component for large clouds).
    const ComponentLabels cl = connected_components(g);
    std::vector<std::vector<Vertex>> members(
        static_cast<std::size_t>(cl.num_components));
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      auto& m = members[static_cast<std::size_t>(
          cl.label[static_cast<std::size_t>(v)])];
      if (m.size() < 64) m.push_back(v);
    }
    for (Vertex c = 1; c < cl.num_components; ++c) {
      double best = std::numeric_limits<double>::infinity();
      Vertex bu = members[0].front();
      Vertex bv = members[static_cast<std::size_t>(c)].front();
      for (Vertex u : members[0]) {
        for (Vertex v : members[static_cast<std::size_t>(c)]) {
          const double d2 = squared_distance(pc, u, v);
          if (d2 < best) {
            best = d2;
            bu = u;
            bv = v;
          }
        }
      }
      g.add_edge(bu, bv, edge_weight(best));
    }
    g.finalize();
    SSP_ASSERT(is_connected(g), "knn_graph: connectivity repair failed");
  }
  return g;
}

}  // namespace ssp
