#pragma once

/// \file weights.hpp
/// Edge-weight models shared by the synthetic generators. The paper's test
/// matrices carry either unit weights (pattern files), physical coefficients
/// spanning decades (circuit/thermal conductances), or similarity values
/// (kNN graphs); the three models below cover those regimes.

#include <cmath>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace ssp {

/// Distribution from which a generator draws edge weights.
struct WeightModel {
  enum class Kind {
    kUnit,        ///< all weights 1.0
    kUniform,     ///< Uniform[lo, hi]
    kLogUniform,  ///< exp(Uniform[log lo, log hi]) — decade-spanning weights
  };
  Kind kind = Kind::kUnit;
  double lo = 1.0;
  double hi = 1.0;

  [[nodiscard]] static WeightModel unit() { return {}; }
  [[nodiscard]] static WeightModel uniform(double lo, double hi) {
    return {Kind::kUniform, lo, hi};
  }
  [[nodiscard]] static WeightModel log_uniform(double lo, double hi) {
    return {Kind::kLogUniform, lo, hi};
  }
};

/// Draws one weight from the model.
[[nodiscard]] inline double draw_weight(const WeightModel& m, Rng& rng) {
  switch (m.kind) {
    case WeightModel::Kind::kUnit:
      return 1.0;
    case WeightModel::Kind::kUniform:
      SSP_REQUIRE(m.lo > 0.0 && m.hi >= m.lo, "invalid uniform weight range");
      return rng.uniform(m.lo, m.hi);
    case WeightModel::Kind::kLogUniform: {
      SSP_REQUIRE(m.lo > 0.0 && m.hi >= m.lo,
                  "invalid log-uniform weight range");
      const double u = rng.uniform(std::log(m.lo), std::log(m.hi));
      return std::exp(u);
    }
  }
  return 1.0;  // unreachable
}

}  // namespace ssp
