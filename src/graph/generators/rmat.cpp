#include "graph/generators/rmat.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "graph/connectivity.hpp"
#include "util/assert.hpp"

namespace ssp {

Graph rmat_graph(int scale, Index edge_factor, Rng& rng,
                 const RmatOptions& opts, const WeightModel& w) {
  SSP_REQUIRE(scale >= 2 && scale <= 28, "rmat: scale must be in [2, 28]");
  SSP_REQUIRE(edge_factor >= 1, "rmat: edge_factor must be >= 1");
  const double psum = opts.a + opts.b + opts.c + opts.d;
  SSP_REQUIRE(std::abs(psum - 1.0) < 1e-6,
              "rmat: quadrant probabilities must sum to 1");
  SSP_REQUIRE(opts.noise >= 0.0 && opts.noise < 1.0,
              "rmat: noise must be in [0, 1)");

  const Vertex n = static_cast<Vertex>(Vertex{1} << scale);
  const EdgeId target = static_cast<EdgeId>(edge_factor) * n;

  std::set<std::pair<Vertex, Vertex>> present;
  Graph g(n);
  auto wdraw = [&] {
    return w.kind == WeightModel::Kind::kUnit ? 1.0 : draw_weight(w, rng);
  };

  EdgeId attempts = 0;
  const EdgeId max_attempts = target * 8;
  while (static_cast<EdgeId>(present.size()) < target &&
         attempts < max_attempts) {
    ++attempts;
    Vertex u = 0;
    Vertex v = 0;
    for (int level = 0; level < scale; ++level) {
      // Per-level multiplicative noise on the quadrant probabilities.
      const double f = 1.0 + opts.noise * (2.0 * rng.uniform() - 1.0);
      double pa = opts.a * f;
      double pb = opts.b / f;
      double pc = opts.c / f;
      double pd = opts.d * f;
      const double norm = pa + pb + pc + pd;
      pa /= norm;
      pb /= norm;
      pc /= norm;
      const double r = rng.uniform();
      const Vertex bit = static_cast<Vertex>(Vertex{1} << (scale - 1 - level));
      if (r < pa) {
        // top-left: nothing
      } else if (r < pa + pb) {
        v |= bit;
      } else if (r < pa + pb + pc) {
        u |= bit;
      } else {
        u |= bit;
        v |= bit;
      }
    }
    if (u == v) continue;
    const Vertex lo = std::min(u, v);
    const Vertex hi = std::max(u, v);
    if (present.insert({lo, hi}).second) {
      g.add_edge(lo, hi, wdraw());
    }
  }
  g.finalize();
  return largest_component(g);
}

}  // namespace ssp
