#include "graph/graph_source.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>
#include <utility>
#include <vector>

#include "graph/generators/community.hpp"
#include "graph/generators/lattice.hpp"
#include "graph/generators/random_graphs.hpp"
#include "graph/generators/weights.hpp"
#include "graph/mtx_io.hpp"
#include "storage/mapped_graph.hpp"
#include "util/rng.hpp"

namespace ssp {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(s.substr(start));
      return parts;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

[[noreturn]] void spec_error(const std::string& spec, const std::string& what) {
  throw std::invalid_argument("bad gen spec '" + spec + "': " + what);
}

long long parse_spec_int(const std::string& tok, const std::string& spec) {
  if (tok.empty() ||
      !std::all_of(tok.begin(), tok.end(),
                   [](unsigned char c) { return std::isdigit(c) != 0; })) {
    spec_error(spec, "'" + tok + "' is not a non-negative integer");
  }
  try {
    return std::stoll(tok);
  } catch (const std::exception&) {
    spec_error(spec, "'" + tok + "' overflows");
  }
}

/// `<nx>x<ny>` dimensions token.
std::pair<Vertex, Vertex> parse_dims(const std::string& tok,
                                     const std::string& spec) {
  const std::size_t x = tok.find('x');
  if (x == std::string::npos) {
    spec_error(spec, "expected <nx>x<ny> dimensions, got '" + tok + "'");
  }
  const auto nx = parse_spec_int(tok.substr(0, x), spec);
  const auto ny = parse_spec_int(tok.substr(x + 1), spec);
  if (nx < 2 || ny < 2) spec_error(spec, "dimensions must be >= 2");
  return {static_cast<Vertex>(nx), static_cast<Vertex>(ny)};
}

}  // namespace

GraphSourceKind classify_graph_source(const std::string& source) {
  if (source.rfind("gen:", 0) == 0) return GraphSourceKind::kGenerator;
  constexpr const char* kExt = ".sspb";
  constexpr std::size_t kExtLen = 5;
  if (source.size() > kExtLen &&
      source.compare(source.size() - kExtLen, kExtLen, kExt) == 0) {
    return GraphSourceKind::kSspb;
  }
  return GraphSourceKind::kMtx;
}

Graph graph_from_spec(const std::string& spec) {
  const std::vector<std::string> parts = split(spec, ':');
  if (parts.empty() || parts[0] != "gen") {
    spec_error(spec, "expected gen:<family>:<params>[:<seed>]");
  }
  if (parts.size() < 3) {
    spec_error(spec, "expected gen:<family>:<params>[:<seed>]");
  }
  const std::string& family = parts[1];
  if (family == "grid2d" || family == "tri") {
    if (parts.size() > 4) spec_error(spec, "too many fields");
    const auto [nx, ny] = parse_dims(parts[2], spec);
    const std::uint64_t seed =
        parts.size() == 4
            ? static_cast<std::uint64_t>(parse_spec_int(parts[3], spec))
            : 1;
    Rng rng(seed);
    return family == "grid2d"
               ? grid_2d(nx, ny, WeightModel::log_uniform(0.1, 10.0), &rng)
               : triangulated_grid(nx, ny, WeightModel::uniform(0.5, 2.0),
                                   &rng);
  }
  if (family == "ba" || family == "planted") {
    if (parts.size() < 4 || parts.size() > 5) {
      spec_error(spec, "expected gen:" + family + ":<n>:<m|k>[:<seed>]");
    }
    const auto n = parse_spec_int(parts[2], spec);
    const auto mk = parse_spec_int(parts[3], spec);
    if (n < 4 || mk < 1) spec_error(spec, "sizes out of range");
    const std::uint64_t seed =
        parts.size() == 5
            ? static_cast<std::uint64_t>(parse_spec_int(parts[4], spec))
            : 1;
    Rng rng(seed);
    if (family == "ba") {
      return barabasi_albert(static_cast<Vertex>(n), static_cast<Vertex>(mk),
                             rng);
    }
    return planted_partition(static_cast<Vertex>(n), static_cast<Vertex>(mk),
                             0.1, 0.005, rng, WeightModel::uniform(0.5, 2.0));
  }
  spec_error(spec, "unknown family '" + family +
                       "' (grid2d|tri|ba|planted)");
}

Graph load_graph_source(const std::string& source) {
  switch (classify_graph_source(source)) {
    case GraphSourceKind::kGenerator:
      return graph_from_spec(source);
    case GraphSourceKind::kSspb:
      return storage::MappedGraph(source).materialize();
    case GraphSourceKind::kMtx:
      break;
  }
  return load_graph_mtx(source);
}

}  // namespace ssp
