#pragma once

/// \file laplacian.hpp
/// Graph ↔ matrix conversions.
///
/// `laplacian(g)` assembles the SDD graph Laplacian of paper Eq. (1):
///   L(p,q) = -w(p,q) for edges, L(p,p) = weighted degree, else 0.
///
/// `graph_from_matrix` implements the paper's §4 conversion rule for general
/// sparse matrices: "each edge weight [is] the absolute value of each
/// nonzero entry in the lower triangular matrix; if edge weights are not
/// available [pattern matrix], a unit edge weight will be assigned".

#include "graph/graph.hpp"
#include "graph/graph_view.hpp"
#include "la/csr_matrix.hpp"

namespace ssp {

/// Graph Laplacian L = D - W (symmetric, rows sum to zero). Consumes a
/// `GraphView`, so heap graphs (implicit conversion) and mmap'd `.sspb`
/// graphs assemble bit-identical matrices.
[[nodiscard]] CsrMatrix laplacian(const GraphView& g);

/// Weighted adjacency matrix W.
[[nodiscard]] CsrMatrix adjacency_matrix(const GraphView& g);

/// Inverse of `laplacian`: off-diagonal entries become edges with weight
/// |L(i,j)| for i < j. Diagonal entries are ignored (recomputed by the
/// Laplacian identity). Throws when L is not square or has positive
/// off-diagonal entries beyond `tol`.
[[nodiscard]] Graph graph_from_laplacian(const CsrMatrix& l,
                                         double tol = 1e-9);

/// Paper §4 rule for arbitrary (square) sparse matrices, applied
/// uniformly over both triangles: each off-diagonal pair {i, j} with at
/// least one nonzero entry becomes the edge {i, j} with weight
/// max(|a_ij|, |a_ji|) (or 1.0 when `unit_weights` is set, matching
/// pattern-only matrix files). For symmetric storage this reduces to the
/// paper's "absolute value of each lower-triangular nonzero"; for skew or
/// asymmetric inputs the magnitude conversion guarantees positive
/// weights, and one-sided upper-triangle files keep their edges instead
/// of silently losing them. Self-loops are discarded, duplicate edges
/// coalesced, and non-finite entries rejected with std::invalid_argument.
[[nodiscard]] Graph graph_from_matrix(const CsrMatrix& a,
                                      bool unit_weights = false);

/// L(p,p) for all p as a vector (weighted degrees).
[[nodiscard]] Vec weighted_degrees(const GraphView& g);

}  // namespace ssp
