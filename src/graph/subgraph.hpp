#pragma once

/// \file subgraph.hpp
/// Vertex-set subgraph extraction with local ↔ global id maps — the shared
/// primitive behind recursive bisection and the partition-parallel
/// sparsification layer (src/scale/).
///
/// All extractors consume a `GraphView` (heap graphs convert
/// implicitly; mmap'd `.sspb` graphs extract without materializing the
/// host), preserve edge multiplicity and weights exactly, keep
/// edges in host edge-id order (so local edge id order is a deterministic
/// function of the host graph), and return finalized graphs.

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/graph_view.hpp"
#include "util/types.hpp"

namespace ssp {

/// A subgraph together with maps back to its host graph: local vertex `i`
/// is host vertex `local_to_global[i]`, local edge `e` is host edge
/// `edge_to_global[e]`.
struct Subgraph {
  Graph graph;  ///< finalized
  std::vector<Vertex> local_to_global;
  std::vector<EdgeId> edge_to_global;
};

/// Induced subgraph on `vertices` (host ids, each at most once): every host
/// edge with both endpoints inside. Local vertex ids follow the order of
/// `vertices`; local edge ids follow ascending host edge id.
[[nodiscard]] Subgraph induced_subgraph(const GraphView& g,
                                        std::span<const Vertex> vertices);

/// One induced subgraph per block of `assignment` (per-vertex block id in
/// [0, num_blocks)), built in a single pass over the edges. Local vertex
/// ids within each block follow ascending host vertex id. Blocks may be
/// empty (zero vertices); callers that forbid empty blocks check
/// themselves.
[[nodiscard]] std::vector<Subgraph> partition_subgraphs(
    const GraphView& g, std::span<const Vertex> assignment, Index num_blocks);

/// The cut graph of an assignment: vertices are the endpoints of
/// inter-block edges (ascending host id), edges are exactly the cut edges
/// (ascending host edge id). Empty when the assignment has no cut edges.
[[nodiscard]] Subgraph cut_subgraph(const GraphView& g,
                                    std::span<const Vertex> assignment);

}  // namespace ssp
