#include "graph/laplacian.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace ssp {

CsrMatrix laplacian(const GraphView& g) {
  const Index n = g.num_vertices();
  std::vector<Triplet> ts;
  ts.reserve(static_cast<std::size_t>(g.num_edges()) * 4);
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    const Edge e = g.edge(id);
    ts.push_back({e.u, e.v, -e.weight});
    ts.push_back({e.v, e.u, -e.weight});
    ts.push_back({e.u, e.u, e.weight});
    ts.push_back({e.v, e.v, e.weight});
  }
  return CsrMatrix::from_triplets(n, n, ts);
}

CsrMatrix adjacency_matrix(const GraphView& g) {
  const Index n = g.num_vertices();
  std::vector<Triplet> ts;
  ts.reserve(static_cast<std::size_t>(g.num_edges()) * 2);
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    const Edge e = g.edge(id);
    ts.push_back({e.u, e.v, e.weight});
    ts.push_back({e.v, e.u, e.weight});
  }
  return CsrMatrix::from_triplets(n, n, ts);
}

Graph graph_from_laplacian(const CsrMatrix& l, double tol) {
  SSP_REQUIRE(l.rows() == l.cols(), "graph_from_laplacian: matrix not square");
  Graph g(static_cast<Vertex>(l.rows()));
  for (Index r = 0; r < l.rows(); ++r) {
    const auto cols = l.row_cols(r);
    const auto vals = l.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const Index c = cols[k];
      if (c <= r) continue;  // use strict upper triangle once
      const double v = vals[k];
      if (v == 0.0) continue;
      SSP_REQUIRE(v <= tol, "graph_from_laplacian: positive off-diagonal");
      const double w = std::abs(v);
      if (w > 0.0) {
        g.add_edge(static_cast<Vertex>(r), static_cast<Vertex>(c), w);
      }
    }
  }
  g.finalize();
  return g;
}

Graph graph_from_matrix(const CsrMatrix& a, bool unit_weights) {
  SSP_REQUIRE(a.rows() == a.cols(), "graph_from_matrix: matrix not square");
  // Structural presence, not value: an explicitly stored 0.0 still claims
  // ownership of its pair, otherwise a zero lower entry with a nonzero
  // upper mirror would be added by both branches and double-counted.
  const auto has_stored_entry = [&a](Index row, Index col) {
    const auto cols = a.row_cols(row);
    return std::binary_search(cols.begin(), cols.end(),
                              static_cast<Vertex>(col));
  };
  Graph g(static_cast<Vertex>(a.rows()));
  for (Index r = 0; r < a.rows(); ++r) {
    const auto cols = a.row_cols(r);
    const auto vals = a.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const Index c = cols[k];
      const double v = vals[k];
      SSP_REQUIRE(std::isfinite(v),
                  "graph_from_matrix: non-finite entry at (" +
                      std::to_string(r + 1) + ", " + std::to_string(c + 1) +
                      ") — cannot convert to an edge weight");
      if (c == r) continue;  // self-loops discarded
      double magnitude = 0.0;
      if (c < r) {
        // Lower-triangle entry: owns the pair. The §4 magnitude rule is
        // applied uniformly across both triangles — a mirrored entry
        // (from symmetric/skew-symmetric expansion or an explicitly
        // two-sided general file) contributes its magnitude too, so
        // negative or sign-flipped mirrors can never reach the Graph as
        // non-positive weights.
        magnitude = std::max(std::abs(v), std::abs(a.at(c, r)));
      } else {
        // Upper-triangle entry: only owns the pair when no lower mirror
        // is stored (one-sided upper-triangle files previously lost
        // these edges entirely).
        if (has_stored_entry(c, r)) continue;
        magnitude = std::abs(v);
      }
      if (magnitude <= 0.0) continue;  // explicit zeros are non-edges
      g.add_edge(static_cast<Vertex>(r), static_cast<Vertex>(c),
                 unit_weights ? 1.0 : magnitude);
    }
  }
  g.coalesce_parallel_edges();
  g.finalize();
  return g;
}

Vec weighted_degrees(const GraphView& g) {
  Vec d(static_cast<std::size_t>(g.num_vertices()), 0.0);
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    const Edge e = g.edge(id);
    d[static_cast<std::size_t>(e.u)] += e.weight;
    d[static_cast<std::size_t>(e.v)] += e.weight;
  }
  return d;
}

}  // namespace ssp
