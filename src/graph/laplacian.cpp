#include "graph/laplacian.hpp"

#include <cmath>
#include <vector>

#include "util/assert.hpp"

namespace ssp {

CsrMatrix laplacian(const Graph& g) {
  const Index n = g.num_vertices();
  std::vector<Triplet> ts;
  ts.reserve(static_cast<std::size_t>(g.num_edges()) * 4);
  for (const Edge& e : g.edges()) {
    ts.push_back({e.u, e.v, -e.weight});
    ts.push_back({e.v, e.u, -e.weight});
    ts.push_back({e.u, e.u, e.weight});
    ts.push_back({e.v, e.v, e.weight});
  }
  return CsrMatrix::from_triplets(n, n, ts);
}

CsrMatrix adjacency_matrix(const Graph& g) {
  const Index n = g.num_vertices();
  std::vector<Triplet> ts;
  ts.reserve(static_cast<std::size_t>(g.num_edges()) * 2);
  for (const Edge& e : g.edges()) {
    ts.push_back({e.u, e.v, e.weight});
    ts.push_back({e.v, e.u, e.weight});
  }
  return CsrMatrix::from_triplets(n, n, ts);
}

Graph graph_from_laplacian(const CsrMatrix& l, double tol) {
  SSP_REQUIRE(l.rows() == l.cols(), "graph_from_laplacian: matrix not square");
  Graph g(static_cast<Vertex>(l.rows()));
  for (Index r = 0; r < l.rows(); ++r) {
    const auto cols = l.row_cols(r);
    const auto vals = l.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const Index c = cols[k];
      if (c <= r) continue;  // use strict upper triangle once
      const double v = vals[k];
      if (v == 0.0) continue;
      SSP_REQUIRE(v <= tol, "graph_from_laplacian: positive off-diagonal");
      const double w = std::abs(v);
      if (w > 0.0) {
        g.add_edge(static_cast<Vertex>(r), static_cast<Vertex>(c), w);
      }
    }
  }
  g.finalize();
  return g;
}

Graph graph_from_matrix(const CsrMatrix& a, bool unit_weights) {
  SSP_REQUIRE(a.rows() == a.cols(), "graph_from_matrix: matrix not square");
  Graph g(static_cast<Vertex>(a.rows()));
  for (Index r = 0; r < a.rows(); ++r) {
    const auto cols = a.row_cols(r);
    const auto vals = a.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const Index c = cols[k];
      if (c >= r) continue;  // strict lower triangle per the paper's rule
      const double w = unit_weights ? 1.0 : std::abs(vals[k]);
      if (w > 0.0) {
        g.add_edge(static_cast<Vertex>(r), static_cast<Vertex>(c), w);
      }
    }
  }
  g.coalesce_parallel_edges();
  g.finalize();
  return g;
}

Vec weighted_degrees(const Graph& g) {
  Vec d(static_cast<std::size_t>(g.num_vertices()), 0.0);
  for (const Edge& e : g.edges()) {
    d[static_cast<std::size_t>(e.u)] += e.weight;
    d[static_cast<std::size_t>(e.v)] += e.weight;
  }
  return d;
}

}  // namespace ssp
