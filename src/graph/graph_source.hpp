#pragma once

/// \file graph_source.hpp
/// Unified graph-source resolution shared by every tool and the serving
/// daemon. A *source string* is one of:
///
///   * `gen:<family>:<params>[:<seed>]` — synthesized on the fly
///     (`gen:grid2d:200x200`, `gen:tri:64x64:7`, `gen:ba:5000:4`,
///     `gen:planted:4096:8:3`);
///   * a path ending in `.sspb` — the binary format written by
///     `ssp_convert` / `storage::write_sspb`, opened via mmap;
///   * any other path — a Matrix Market file for `load_graph_mtx`.
///
/// Before this header, each tool grew its own subset (ssp_serve parsed
/// `gen:` specs, the others only took `.mtx` paths), so the same spec
/// meant different things in different binaries. Now classification and
/// loading live here once; `serve::load_session_graph` and the tools are
/// thin wrappers.

#include <string>

#include "graph/graph.hpp"

namespace ssp {

enum class GraphSourceKind {
  kGenerator,  ///< `gen:` spec
  kSspb,       ///< `.sspb` binary file
  kMtx,        ///< Matrix Market file (the default)
};

/// Classifies `source` by shape alone (no filesystem access): a `gen:`
/// prefix wins, then a `.sspb` suffix, else Matrix Market.
[[nodiscard]] GraphSourceKind classify_graph_source(const std::string& source);

/// Synthesizes the graph described by a `gen:` spec. Families and their
/// weight models match the serving daemon's historical behaviour exactly
/// (grid2d → log-uniform [0.1, 10], tri → uniform [0.5, 2], ba →
/// unit-ish preferential attachment, planted → uniform [0.5, 2]); the
/// seed defaults to 1. Throws std::invalid_argument on malformed specs,
/// naming the offending field.
[[nodiscard]] Graph graph_from_spec(const std::string& spec);

/// Resolves any source string to a finalized heap `Graph`: dispatches on
/// `classify_graph_source`. `.sspb` files are mapped, validated, and
/// materialized (bit-identical to the converter's input graph); Matrix
/// Market files go through `load_graph_mtx`. Throws on malformed specs,
/// unreadable files, or corrupt binaries (`storage::SspbError`).
[[nodiscard]] Graph load_graph_source(const std::string& source);

}  // namespace ssp
