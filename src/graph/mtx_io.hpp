#pragma once

/// \file mtx_io.hpp
/// Matrix Market (.mtx) I/O — the interchange format of the SuiteSparse/UFL
/// collection the paper evaluates on. The offline benchmarks use synthetic
/// proxies (see DESIGN.md §3), but any real SuiteSparse matrix drops in via
/// `load_graph_mtx`.
///
/// Supported header: `matrix coordinate {real|integer|pattern}
/// {general|symmetric|skew-symmetric}`. Comments (%) and blank lines are
/// skipped. 1-based indices per the spec.

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"
#include "graph/graph_view.hpp"
#include "la/csr_matrix.hpp"

namespace ssp {

/// Parses a Matrix Market stream into a CSR matrix. Symmetric files are
/// expanded (both triangles stored). Throws std::runtime_error on malformed
/// input.
[[nodiscard]] CsrMatrix read_matrix_market(std::istream& in);

/// File-path convenience overload; throws std::runtime_error when the file
/// cannot be opened.
[[nodiscard]] CsrMatrix read_matrix_market_file(const std::string& path);

/// Writes `a` in `coordinate real general` format.
void write_matrix_market(std::ostream& out, const CsrMatrix& a);
void write_matrix_market_file(const std::string& path, const CsrMatrix& a);

/// Loads a graph from a Matrix Market file using the paper §4 conversion
/// (absolute values of strict lower-triangular entries; unit weights for
/// pattern files), then keeps the largest connected component.
[[nodiscard]] Graph load_graph_mtx(const std::string& path);

/// Writes the weighted adjacency of `g` as a symmetric .mtx (lower
/// triangle, edge-id order). Consumes a `GraphView`: heap graphs (the
/// generators' output path) convert implicitly, and mmap'd `.sspb` graphs
/// export without materializing on the heap.
void save_graph_mtx(const std::string& path, const GraphView& g);

}  // namespace ssp
