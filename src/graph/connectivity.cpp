#include "graph/connectivity.hpp"

#include <algorithm>
#include <vector>

#include "util/assert.hpp"

namespace ssp {

ComponentLabels connected_components(const Graph& g) {
  SSP_REQUIRE(g.finalized(), "connected_components: graph must be finalized");
  const Vertex n = g.num_vertices();
  ComponentLabels out;
  out.label.assign(static_cast<std::size_t>(n), kInvalidVertex);
  std::vector<Vertex> stack;
  for (Vertex s = 0; s < n; ++s) {
    if (out.label[static_cast<std::size_t>(s)] != kInvalidVertex) continue;
    const Vertex comp = out.num_components++;
    stack.push_back(s);
    out.label[static_cast<std::size_t>(s)] = comp;
    while (!stack.empty()) {
      const Vertex v = stack.back();
      stack.pop_back();
      for (const auto item : g.neighbors(v)) {
        if (out.label[static_cast<std::size_t>(item.neighbor)] ==
            kInvalidVertex) {
          out.label[static_cast<std::size_t>(item.neighbor)] = comp;
          stack.push_back(item.neighbor);
        }
      }
    }
  }
  return out;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) return false;
  return connected_components(g).num_components == 1;
}

Graph largest_component(const Graph& g, std::vector<Vertex>* new_to_old) {
  const ComponentLabels cl = connected_components(g);
  SSP_REQUIRE(cl.num_components > 0, "largest_component: empty graph");

  std::vector<Index> sizes(static_cast<std::size_t>(cl.num_components), 0);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    ++sizes[static_cast<std::size_t>(cl.label[static_cast<std::size_t>(v)])];
  }
  const Vertex best = static_cast<Vertex>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());

  std::vector<Vertex> old_to_new(static_cast<std::size_t>(g.num_vertices()),
                                 kInvalidVertex);
  std::vector<Vertex> back;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (cl.label[static_cast<std::size_t>(v)] == best) {
      old_to_new[static_cast<std::size_t>(v)] =
          static_cast<Vertex>(back.size());
      back.push_back(v);
    }
  }
  Graph out(static_cast<Vertex>(back.size()));
  for (const Edge& e : g.edges()) {
    const Vertex nu = old_to_new[static_cast<std::size_t>(e.u)];
    const Vertex nv = old_to_new[static_cast<std::size_t>(e.v)];
    if (nu != kInvalidVertex && nv != kInvalidVertex) {
      out.add_edge(nu, nv, e.weight);
    }
  }
  out.finalize();
  if (new_to_old != nullptr) *new_to_old = std::move(back);
  return out;
}

Index connect_components(Graph& g, double link_weight) {
  g.finalize();
  const ComponentLabels cl = connected_components(g);
  if (cl.num_components <= 1) return 0;
  std::vector<Vertex> representative(
      static_cast<std::size_t>(cl.num_components), kInvalidVertex);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    auto& rep =
        representative[static_cast<std::size_t>(cl.label[static_cast<std::size_t>(v)])];
    if (rep == kInvalidVertex) rep = v;
  }
  Index added = 0;
  for (Vertex c = 1; c < cl.num_components; ++c) {
    g.add_edge(representative[static_cast<std::size_t>(c - 1)],
               representative[static_cast<std::size_t>(c)], link_weight);
    ++added;
  }
  g.finalize();
  return added;
}

}  // namespace ssp
