#include "graph/graph.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace ssp {

Graph::Graph(Vertex n) : n_(n) {
  SSP_REQUIRE(n >= 0, "vertex count must be non-negative");
}

void Graph::check_vertex(Vertex v) const {
  SSP_REQUIRE(v >= 0 && v < n_, "vertex id out of range");
}

EdgeId Graph::add_edge(Vertex u, Vertex v, double w) {
  check_vertex(u);
  check_vertex(v);
  SSP_REQUIRE(u != v, "self-loops are not allowed");
  SSP_REQUIRE(w > 0.0 && std::isfinite(w), "edge weight must be positive and finite");
  edges_.push_back(Edge{u, v, w});
  finalized_ = false;
  return static_cast<EdgeId>(edges_.size()) - 1;
}

std::vector<EdgeId> Graph::remove_edges(std::span<const EdgeId> edge_ids) {
  std::vector<char> drop(edges_.size(), 0);
  for (const EdgeId e : edge_ids) {
    SSP_REQUIRE(e >= 0 && e < num_edges(),
                "remove_edges: edge id out of range");
    SSP_REQUIRE(drop[static_cast<std::size_t>(e)] == 0,
                "remove_edges: duplicate edge id");
    drop[static_cast<std::size_t>(e)] = 1;
  }
  std::vector<EdgeId> remap(edges_.size(), kInvalidEdge);
  EdgeId next = 0;
  for (EdgeId e = 0; e < num_edges(); ++e) {
    if (drop[static_cast<std::size_t>(e)] != 0) continue;
    remap[static_cast<std::size_t>(e)] = next;
    if (next != e) {
      edges_[static_cast<std::size_t>(next)] = edges_[static_cast<std::size_t>(e)];
    }
    ++next;
  }
  edges_.resize(static_cast<std::size_t>(next));
  if (!edge_ids.empty()) finalized_ = false;
  return remap;
}

void Graph::set_weight(EdgeId e, double w) {
  SSP_REQUIRE(e >= 0 && e < num_edges(), "set_weight: edge id out of range");
  SSP_REQUIRE(w > 0.0 && std::isfinite(w),
              "set_weight: edge weight must be positive and finite");
  Edge& edge = edges_[static_cast<std::size_t>(e)];
  if (finalized_) {
    const double delta = w - edge.weight;
    weighted_degree_[static_cast<std::size_t>(edge.u)] += delta;
    weighted_degree_[static_cast<std::size_t>(edge.v)] += delta;
    for (const Vertex end : {edge.u, edge.v}) {
      const auto b = static_cast<std::size_t>(adj_ptr_[static_cast<std::size_t>(end)]);
      const auto lim = static_cast<std::size_t>(adj_ptr_[static_cast<std::size_t>(end) + 1]);
      for (std::size_t pos = b; pos < lim; ++pos) {
        if (adj_eid_[pos] == e) {
          adj_w_[pos] = w;
          break;
        }
      }
    }
  }
  edge.weight = w;
}

EdgeId Graph::find_edge(Vertex u, Vertex v) const {
  SSP_REQUIRE(finalized_, "call finalize() before find_edge()");
  check_vertex(u);
  check_vertex(v);
  if (degree(v) < degree(u)) std::swap(u, v);
  EdgeId best = kInvalidEdge;
  for (const auto item : neighbors(u)) {
    if (item.neighbor == v && (best == kInvalidEdge || item.edge < best)) {
      best = item.edge;
    }
  }
  return best;
}

const Edge& Graph::edge(EdgeId e) const {
  SSP_REQUIRE(e >= 0 && e < num_edges(), "edge id out of range");
  return edges_[static_cast<std::size_t>(e)];
}

void Graph::finalize() {
  if (finalized_) return;
  const auto n = static_cast<std::size_t>(n_);
  adj_ptr_.assign(n + 1, 0);
  for (const Edge& e : edges_) {
    ++adj_ptr_[static_cast<std::size_t>(e.u) + 1];
    ++adj_ptr_[static_cast<std::size_t>(e.v) + 1];
  }
  for (std::size_t i = 0; i < n; ++i) adj_ptr_[i + 1] += adj_ptr_[i];
  const auto dir_entries = static_cast<std::size_t>(adj_ptr_[n]);
  adj_nbr_.resize(dir_entries);
  adj_eid_.resize(dir_entries);
  adj_w_.resize(dir_entries);
  std::vector<Index> slot(adj_ptr_.begin(), adj_ptr_.end() - 1);
  for (EdgeId id = 0; id < num_edges(); ++id) {
    const Edge& e = edges_[static_cast<std::size_t>(id)];
    auto put = [&](Vertex from, Vertex to) {
      const auto pos = static_cast<std::size_t>(slot[static_cast<std::size_t>(from)]++);
      adj_nbr_[pos] = to;
      adj_eid_[pos] = id;
      adj_w_[pos] = e.weight;
    };
    put(e.u, e.v);
    put(e.v, e.u);
  }
  weighted_degree_.assign(n, 0.0);
  for (const Edge& e : edges_) {
    weighted_degree_[static_cast<std::size_t>(e.u)] += e.weight;
    weighted_degree_[static_cast<std::size_t>(e.v)] += e.weight;
  }
  finalized_ = true;
}

void Graph::coalesce_parallel_edges() {
  std::map<std::pair<Vertex, Vertex>, double> merged;
  for (const Edge& e : edges_) {
    const auto key = std::minmax(e.u, e.v);
    merged[{key.first, key.second}] += e.weight;
  }
  edges_.clear();
  edges_.reserve(merged.size());
  for (const auto& [uv, w] : merged) {
    edges_.push_back(Edge{uv.first, uv.second, w});
  }
  finalized_ = false;
}

Graph::NeighborRange Graph::neighbors(Vertex v) const {
  SSP_REQUIRE(finalized_, "call finalize() before neighbors()");
  check_vertex(v);
  const auto b = static_cast<std::size_t>(adj_ptr_[static_cast<std::size_t>(v)]);
  const auto e = static_cast<std::size_t>(adj_ptr_[static_cast<std::size_t>(v) + 1]);
  return NeighborRange(adj_nbr_.data() + b, adj_eid_.data() + b,
                       adj_w_.data() + b, e - b);
}

Index Graph::degree(Vertex v) const {
  SSP_REQUIRE(finalized_, "call finalize() before degree()");
  check_vertex(v);
  return adj_ptr_[static_cast<std::size_t>(v) + 1] -
         adj_ptr_[static_cast<std::size_t>(v)];
}

double Graph::weighted_degree(Vertex v) const {
  SSP_REQUIRE(finalized_, "call finalize() before weighted_degree()");
  check_vertex(v);
  return weighted_degree_[static_cast<std::size_t>(v)];
}

double Graph::total_weight() const {
  double s = 0.0;
  for (const Edge& e : edges_) s += e.weight;
  return s;
}

Graph Graph::edge_subgraph(std::span<const EdgeId> edge_ids) const {
  Graph out(n_);
  out.edges_.reserve(edge_ids.size());
  for (EdgeId id : edge_ids) {
    const Edge& e = edge(id);
    out.edges_.push_back(e);
  }
  out.finalize();
  return out;
}

}  // namespace ssp
