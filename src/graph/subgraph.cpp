#include "graph/subgraph.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ssp {

Subgraph induced_subgraph(const GraphView& g, std::span<const Vertex> vertices) {
  std::vector<Vertex> global_to_local(
      static_cast<std::size_t>(g.num_vertices()), kInvalidVertex);
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const Vertex v = vertices[i];
    SSP_REQUIRE(v >= 0 && v < g.num_vertices(),
                "induced_subgraph: vertex id out of range");
    SSP_REQUIRE(global_to_local[static_cast<std::size_t>(v)] == kInvalidVertex,
                "induced_subgraph: duplicate vertex in selection");
    global_to_local[static_cast<std::size_t>(v)] = static_cast<Vertex>(i);
  }

  Subgraph out;
  out.local_to_global.assign(vertices.begin(), vertices.end());
  out.graph = Graph(static_cast<Vertex>(vertices.size()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge edge = g.edge(e);
    const Vertex lu = global_to_local[static_cast<std::size_t>(edge.u)];
    const Vertex lv = global_to_local[static_cast<std::size_t>(edge.v)];
    if (lu != kInvalidVertex && lv != kInvalidVertex) {
      out.graph.add_edge(lu, lv, edge.weight);
      out.edge_to_global.push_back(e);
    }
  }
  out.graph.finalize();
  return out;
}

std::vector<Subgraph> partition_subgraphs(const GraphView& g,
                                          std::span<const Vertex> assignment,
                                          Index num_blocks) {
  SSP_REQUIRE(
      assignment.size() == static_cast<std::size_t>(g.num_vertices()),
      "partition_subgraphs: assignment size must equal num_vertices");
  SSP_REQUIRE(num_blocks >= 1, "partition_subgraphs: need >= 1 block");

  std::vector<Subgraph> blocks(static_cast<std::size_t>(num_blocks));
  // Local vertex ids per block in ascending global id order.
  std::vector<Vertex> local_id(static_cast<std::size_t>(g.num_vertices()),
                               kInvalidVertex);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const Vertex b = assignment[static_cast<std::size_t>(v)];
    SSP_REQUIRE(b >= 0 && static_cast<Index>(b) < num_blocks,
                "partition_subgraphs: block id out of range");
    auto& block = blocks[static_cast<std::size_t>(b)];
    local_id[static_cast<std::size_t>(v)] =
        static_cast<Vertex>(block.local_to_global.size());
    block.local_to_global.push_back(v);
  }
  for (auto& block : blocks) {
    block.graph = Graph(static_cast<Vertex>(block.local_to_global.size()));
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge edge = g.edge(e);
    const Vertex bu = assignment[static_cast<std::size_t>(edge.u)];
    const Vertex bv = assignment[static_cast<std::size_t>(edge.v)];
    if (bu != bv) continue;
    auto& block = blocks[static_cast<std::size_t>(bu)];
    block.graph.add_edge(local_id[static_cast<std::size_t>(edge.u)],
                         local_id[static_cast<std::size_t>(edge.v)],
                         edge.weight);
    block.edge_to_global.push_back(e);
  }
  for (auto& block : blocks) block.graph.finalize();
  return blocks;
}

Subgraph cut_subgraph(const GraphView& g, std::span<const Vertex> assignment) {
  SSP_REQUIRE(assignment.size() == static_cast<std::size_t>(g.num_vertices()),
              "cut_subgraph: assignment size must equal num_vertices");

  std::vector<char> boundary(static_cast<std::size_t>(g.num_vertices()), 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge edge = g.edge(e);
    if (assignment[static_cast<std::size_t>(edge.u)] !=
        assignment[static_cast<std::size_t>(edge.v)]) {
      boundary[static_cast<std::size_t>(edge.u)] = 1;
      boundary[static_cast<std::size_t>(edge.v)] = 1;
    }
  }

  Subgraph out;
  std::vector<Vertex> global_to_local(
      static_cast<std::size_t>(g.num_vertices()), kInvalidVertex);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (boundary[static_cast<std::size_t>(v)] != 0) {
      global_to_local[static_cast<std::size_t>(v)] =
          static_cast<Vertex>(out.local_to_global.size());
      out.local_to_global.push_back(v);
    }
  }
  out.graph = Graph(static_cast<Vertex>(out.local_to_global.size()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge edge = g.edge(e);
    if (assignment[static_cast<std::size_t>(edge.u)] ==
        assignment[static_cast<std::size_t>(edge.v)]) {
      continue;
    }
    out.graph.add_edge(global_to_local[static_cast<std::size_t>(edge.u)],
                       global_to_local[static_cast<std::size_t>(edge.v)],
                       edge.weight);
    out.edge_to_global.push_back(e);
  }
  out.graph.finalize();
  return out;
}

}  // namespace ssp
