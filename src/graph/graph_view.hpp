#pragma once

/// \file graph_view.hpp
/// `GraphView` — a non-owning, read-only view of a finalized weighted
/// undirected graph in CSR form, satisfied by two producers:
///
///  * a heap `Graph` (implicit conversion; the view borrows its edge list
///    and CSR arrays), and
///  * an mmap'd `.sspb` file (`storage::MappedGraph::view()`; the arrays
///    live in the page cache, zero-copy).
///
/// The read-only hot paths — `laplacian()`, subgraph extraction
/// (graph/subgraph.hpp), `save_graph_mtx`, and the Kruskal edge scan
/// behind `max_weight_spanning_tree` — consume a `GraphView`, so they run
/// identically on in-core and out-of-core graphs. Edge iteration order,
/// adjacency order, and every accessor's result are bit-identical between
/// the two producers for the same logical graph (the `.sspb` writer
/// serializes exactly the arrays `Graph::finalize()` builds).
///
/// The view borrows: the producer (Graph or MappedGraph) must outlive it.
/// Edge storage differs between producers — heap graphs keep an AoS
/// `Edge` array, `.sspb` files keep SoA u/v/w sections — so `edge()`
/// returns by value and branches on the layout.

#include <span>

#include "graph/graph.hpp"
#include "util/assert.hpp"
#include "util/types.hpp"

namespace ssp {

class GraphView {
 public:
  /// Borrows the edge list and CSR arrays of `g` (must be finalized and
  /// outlive the view). Implicit so every `const Graph&` call site of the
  /// view-consuming hot paths keeps compiling unchanged.
  GraphView(const Graph& g)  // NOLINT(google-explicit-constructor)
      : n_(g.num_vertices()),
        m_(g.num_edges()),
        aos_(g.edges().data()),
        adj_ptr_(g.adj_ptr_.data()),
        adj_nbr_(g.adj_nbr_.data()),
        adj_eid_(g.adj_eid_.data()),
        adj_w_(g.adj_w_.data()),
        weighted_degree_(g.weighted_degree_.data()) {
    SSP_REQUIRE(g.finalized(), "GraphView: graph must be finalized");
  }

  /// Assembles a view over raw CSR sections (the mmap'd `.sspb` layout):
  /// SoA edge arrays of length m, `adj_ptr` of length n + 1, the three
  /// adjacency arrays of length 2m, and per-vertex weighted degrees of
  /// length n. The caller guarantees the arrays describe a consistent
  /// finalized graph (the storage layer validates on open).
  static GraphView from_parts(Vertex n, EdgeId m, const Vertex* edge_u,
                              const Vertex* edge_v, const double* edge_w,
                              const Index* adj_ptr, const Vertex* adj_nbr,
                              const EdgeId* adj_eid, const double* adj_w,
                              const double* weighted_degree) {
    GraphView v;
    v.n_ = n;
    v.m_ = m;
    v.soa_u_ = edge_u;
    v.soa_v_ = edge_v;
    v.soa_w_ = edge_w;
    v.adj_ptr_ = adj_ptr;
    v.adj_nbr_ = adj_nbr;
    v.adj_eid_ = adj_eid;
    v.adj_w_ = adj_w;
    v.weighted_degree_ = weighted_degree;
    return v;
  }

  [[nodiscard]] Vertex num_vertices() const { return n_; }
  [[nodiscard]] EdgeId num_edges() const { return m_; }

  /// The edge with identifier `e` (by value: the two producers store
  /// edges in different layouts).
  [[nodiscard]] Edge edge(EdgeId e) const {
    SSP_DASSERT(e >= 0 && e < m_, "GraphView: edge id out of range");
    const auto i = static_cast<std::size_t>(e);
    if (aos_ != nullptr) return aos_[i];
    return Edge{soa_u_[i], soa_v_[i], soa_w_[i]};
  }

  /// Neighbors of `v` in CSR order (identical to `Graph::neighbors`).
  [[nodiscard]] Graph::NeighborRange neighbors(Vertex v) const {
    SSP_DASSERT(v >= 0 && v < n_, "GraphView: vertex id out of range");
    const auto b = static_cast<std::size_t>(adj_ptr_[static_cast<std::size_t>(v)]);
    const auto e =
        static_cast<std::size_t>(adj_ptr_[static_cast<std::size_t>(v) + 1]);
    return Graph::NeighborRange(adj_nbr_ + b, adj_eid_ + b, adj_w_ + b, e - b);
  }

  [[nodiscard]] Index degree(Vertex v) const {
    SSP_DASSERT(v >= 0 && v < n_, "GraphView: vertex id out of range");
    return adj_ptr_[static_cast<std::size_t>(v) + 1] -
           adj_ptr_[static_cast<std::size_t>(v)];
  }

  [[nodiscard]] double weighted_degree(Vertex v) const {
    SSP_DASSERT(v >= 0 && v < n_, "GraphView: vertex id out of range");
    return weighted_degree_[static_cast<std::size_t>(v)];
  }

  /// Sum of all edge weights, accumulated in edge-id order (the same
  /// order `Graph::total_weight()` uses, so the result is bit-identical).
  [[nodiscard]] double total_weight() const {
    double s = 0.0;
    for (EdgeId e = 0; e < m_; ++e) s += edge(e).weight;
    return s;
  }

  /// Raw CSR sections (length n + 1, 2m, 2m, 2m, n) — the serialization
  /// surface of the `.sspb` writer.
  [[nodiscard]] std::span<const Index> adj_ptr() const {
    return {adj_ptr_, static_cast<std::size_t>(n_) + 1};
  }
  [[nodiscard]] std::span<const Vertex> adj_nbr() const {
    return {adj_nbr_, directed_entries()};
  }
  [[nodiscard]] std::span<const EdgeId> adj_eid() const {
    return {adj_eid_, directed_entries()};
  }
  [[nodiscard]] std::span<const double> adj_w() const {
    return {adj_w_, directed_entries()};
  }
  [[nodiscard]] std::span<const double> weighted_degrees_span() const {
    return {weighted_degree_, static_cast<std::size_t>(n_)};
  }

  /// Deep-copies the view into a finalized heap `Graph` with the same
  /// vertex count, edge order, and weight bits. The rebuilt CSR arrays
  /// match the view's (finalize() derives them deterministically from the
  /// edge list) — the round-trip identity tests/test_storage.cpp checks.
  [[nodiscard]] Graph materialize() const {
    Graph g(n_);
    for (EdgeId e = 0; e < m_; ++e) {
      const Edge ed = edge(e);
      g.add_edge(ed.u, ed.v, ed.weight);
    }
    g.finalize();
    return g;
  }

 private:
  GraphView() = default;

  [[nodiscard]] std::size_t directed_entries() const {
    return static_cast<std::size_t>(adj_ptr_[static_cast<std::size_t>(n_)]);
  }

  Vertex n_ = 0;
  EdgeId m_ = 0;
  // Edge storage: exactly one of aos_ (heap Graph) or soa_* (.sspb).
  const Edge* aos_ = nullptr;
  const Vertex* soa_u_ = nullptr;
  const Vertex* soa_v_ = nullptr;
  const double* soa_w_ = nullptr;
  // CSR adjacency + weighted degrees (both producers).
  const Index* adj_ptr_ = nullptr;
  const Vertex* adj_nbr_ = nullptr;
  const EdgeId* adj_eid_ = nullptr;
  const double* adj_w_ = nullptr;
  const double* weighted_degree_ = nullptr;
};

}  // namespace ssp
