#pragma once

/// \file pcg.hpp
/// Preconditioned conjugate gradients for SPD systems and (with constant-
/// vector deflation) for connected-graph Laplacians.
///
/// This is the solver of the paper's Table 2 experiment: a spectral
/// sparsifier P of G used as preconditioner makes the iteration count
/// depend only on the relative condition number κ(L_G, L_P) ≤ σ², which is
/// exactly the quantity the similarity-aware filter controls.

#include <span>

#include "la/csr_matrix.hpp"
#include "solver/preconditioner.hpp"

namespace ssp {

struct PcgOptions {
  Index max_iterations = 2000;
  /// Convergence test: ||b − A x||₂ ≤ rel_tolerance · ||b||₂ (the paper's
  /// Table 2 uses 1e-3).
  double rel_tolerance = 1e-8;
  /// Deflate the all-ones nullspace (set for Laplacian systems): b, x and
  /// every preconditioned residual are kept zero-mean.
  bool project_constants = false;
};

struct PcgResult {
  Index iterations = 0;
  /// ||b − A x||₂ / ||b||₂ of the *returned* iterate. On a curvature
  /// breakdown this is recomputed from scratch rather than carried over
  /// from the recurrence, so it is always trustworthy.
  double relative_residual = 0.0;
  bool converged = false;
  /// True when the iteration stopped on non-positive curvature
  /// (pᵀA p ≤ 0): A is not positive (semi-)definite on the search space,
  /// or rounding collapsed the search direction. The returned x is the
  /// best iterate found before the breakdown; `converged` stays false
  /// unless its residual happens to meet the tolerance.
  bool breakdown = false;
};

/// Solves A x = b, overwriting x (which provides the initial guess).
/// Throws std::invalid_argument on size mismatches.
PcgResult pcg_solve(const CsrMatrix& a, std::span<const double> b,
                    std::span<double> x, const Preconditioner& m,
                    const PcgOptions& opts = {});

/// Unpreconditioned CG convenience wrapper.
PcgResult cg_solve(const CsrMatrix& a, std::span<const double> b,
                   std::span<double> x, const PcgOptions& opts = {});

}  // namespace ssp
