#include "solver/preconditioner.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ssp {

IdentityPreconditioner::IdentityPreconditioner(Index n) : n_(n) {
  SSP_REQUIRE(n >= 0, "IdentityPreconditioner: negative size");
}

void IdentityPreconditioner::apply(std::span<const double> r,
                                   std::span<double> z) const {
  SSP_REQUIRE(static_cast<Index>(r.size()) == n_ &&
                  static_cast<Index>(z.size()) == n_,
              "IdentityPreconditioner: size mismatch");
  std::copy(r.begin(), r.end(), z.begin());
}

JacobiPreconditioner::JacobiPreconditioner(const CsrMatrix& a) {
  SSP_REQUIRE(a.rows() == a.cols(), "JacobiPreconditioner: matrix not square");
  inv_diag_ = a.diagonal();
  for (double& d : inv_diag_) {
    SSP_REQUIRE(d > 0.0, "JacobiPreconditioner: non-positive diagonal entry");
    d = 1.0 / d;
  }
}

void JacobiPreconditioner::apply(std::span<const double> r,
                                 std::span<double> z) const {
  SSP_REQUIRE(r.size() == inv_diag_.size() && z.size() == inv_diag_.size(),
              "JacobiPreconditioner: size mismatch");
  for (std::size_t i = 0; i < r.size(); ++i) z[i] = r[i] * inv_diag_[i];
}

TreePreconditioner::TreePreconditioner(const SpanningTree& tree)
    : solver_(tree) {}

void TreePreconditioner::apply(std::span<const double> r,
                               std::span<double> z) const {
  solver_.solve(r, z);
}

}  // namespace ssp
