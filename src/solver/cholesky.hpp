#pragma once

/// \file cholesky.hpp
/// Simplicial sparse Cholesky factorization — the repo's stand-in for the
/// CHOLMOD direct solver the paper uses as the Table 3 baseline [5].
///
/// Pipeline: fill-reducing ordering (RCM default) → elimination tree →
/// per-row pattern via `ereach` → up-looking numeric factorization
/// (CSparse/`cs_chol` lineage, Davis 2006). The factor is stored in CSC
/// with the diagonal entry first in each column.
///
/// Laplacians are factored by *grounding*: one vertex's row/column is
/// removed, making the reduced matrix SPD for connected graphs; solutions
/// are re-centered to zero mean (valid because RHS vectors are projected
/// onto the range, see DESIGN.md §5).

#include <span>
#include <vector>

#include "la/csr_matrix.hpp"
#include "solver/preconditioner.hpp"
#include "util/types.hpp"

namespace ssp {

struct CholeskyOptions {
  enum class Ordering { kNatural, kRcm, kMinDegree };
  Ordering ordering = Ordering::kRcm;
  /// Added to every diagonal entry before factoring (regularization).
  double diagonal_shift = 0.0;
};

class SparseCholesky {
 public:
  /// Factors an SPD matrix (full symmetric CSR). Throws std::runtime_error
  /// when a pivot is non-positive (matrix not SPD).
  [[nodiscard]] static SparseCholesky factor(const CsrMatrix& a,
                                             const CholeskyOptions& opts = {});

  /// Factors a connected-graph Laplacian by grounding vertex `pin`
  /// (default: last vertex).
  [[nodiscard]] static SparseCholesky factor_laplacian(
      const CsrMatrix& l, const CholeskyOptions& opts = {},
      Index pin = -1);

  /// Solves A x = b. In Laplacian mode, b is projected to zero mean and the
  /// solution is returned with zero mean (pseudoinverse convention).
  void solve(std::span<const double> b, std::span<double> x) const;
  [[nodiscard]] Vec solve(std::span<const double> b) const;

  /// Dimension of the factored operator as seen by solve().
  [[nodiscard]] Index size() const { return outer_n_; }

  /// Nonzeros in the triangular factor (including diagonal).
  [[nodiscard]] Index factor_nnz() const {
    return static_cast<Index>(rows_.size());
  }

  /// nnz(L) / nnz(tril(A)) — fill-in ratio.
  [[nodiscard]] double fill_ratio() const { return fill_ratio_; }

  /// Analytic storage footprint of the factor (values + indices + column
  /// pointers + permutations) — the Table 3 memory metric.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  SparseCholesky() = default;
  static SparseCholesky factor_impl(const CsrMatrix& a,
                                    const CholeskyOptions& opts);

  Index n_ = 0;        ///< factored (possibly grounded) dimension
  Index outer_n_ = 0;  ///< dimension seen by callers
  bool laplacian_mode_ = false;
  Index pin_ = -1;  ///< grounded vertex (original index), -1 when not
  // Permutation of the factored matrix: order_[new] = old (within the
  // grounded index space).
  std::vector<Vertex> order_;
  std::vector<Vertex> inverse_order_;
  // Factor in CSC, diagonal first per column.
  std::vector<Index> col_ptr_;
  std::vector<Vertex> rows_;
  std::vector<double> values_;
  double fill_ratio_ = 1.0;
};

/// Adapter: use a (Laplacian-mode) Cholesky factorization as a PCG
/// preconditioner / inner eigensolver operator.
class CholeskyPreconditioner final : public Preconditioner {
 public:
  explicit CholeskyPreconditioner(const SparseCholesky& chol) : chol_(&chol) {}
  void apply(std::span<const double> r, std::span<double> z) const override {
    chol_->solve(r, z);
  }
  [[nodiscard]] Index size() const override { return chol_->size(); }

 private:
  const SparseCholesky* chol_;
};

/// Elimination tree of a symmetric matrix (upper-triangle walk, Liu's
/// algorithm). parent[k] = etree parent or -1 for roots. Exposed for tests.
[[nodiscard]] std::vector<Vertex> elimination_tree(const CsrMatrix& a);

}  // namespace ssp
