#pragma once

/// \file ordering.hpp
/// Fill-reducing orderings for the sparse Cholesky factorization.
///
/// * Reverse Cuthill–McKee (default): bandwidth-reducing BFS ordering from
///   a pseudo-peripheral vertex — effective on the mesh matrices of the
///   paper's Table 3 direct-solver baseline.
/// * Greedy minimum degree: eliminates the minimum-degree vertex and forms
///   the fill clique among its neighbors. Quadratic worst case; intended
///   for moderate problem sizes and the ordering ablation.

#include <span>
#include <vector>

#include "la/csr_matrix.hpp"
#include "util/types.hpp"

namespace ssp {

/// Result convention: `order[new_index] = old_index` (a permutation of
/// 0..n-1). Symmetric pattern is assumed (only the pattern is read).
[[nodiscard]] std::vector<Vertex> rcm_ordering(const CsrMatrix& a);

[[nodiscard]] std::vector<Vertex> min_degree_ordering(const CsrMatrix& a);

/// Identity ordering (natural).
[[nodiscard]] std::vector<Vertex> natural_ordering(Index n);

/// Symmetric permutation: B(i, j) = A(order[i], order[j]).
[[nodiscard]] CsrMatrix permute_symmetric(const CsrMatrix& a,
                                          std::span<const Vertex> order);

}  // namespace ssp
