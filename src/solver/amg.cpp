#include "solver/amg.hpp"

#include <algorithm>
#include <cmath>

#include "la/vector_ops.hpp"
#include "util/assert.hpp"

namespace ssp {

namespace {

/// Greedy heavy-edge aggregation. Returns (aggregate labels, #aggregates).
std::pair<std::vector<Vertex>, Index> aggregate_heavy_edge(
    const CsrMatrix& a) {
  const Index n = a.rows();
  std::vector<Vertex> agg(static_cast<std::size_t>(n), kInvalidVertex);
  Index next_agg = 0;

  // Pass 1: pair each unaggregated vertex with its strongest unaggregated
  // neighbor.
  for (Index v = 0; v < n; ++v) {
    if (agg[static_cast<std::size_t>(v)] != kInvalidVertex) continue;
    const auto cols = a.row_cols(v);
    const auto vals = a.row_vals(v);
    Vertex best = kInvalidVertex;
    double best_w = 0.0;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const Vertex u = cols[k];
      if (u == v || agg[static_cast<std::size_t>(u)] != kInvalidVertex) {
        continue;
      }
      const double w = std::abs(vals[k]);
      if (w > best_w) {
        best_w = w;
        best = u;
      }
    }
    agg[static_cast<std::size_t>(v)] = static_cast<Vertex>(next_agg);
    if (best != kInvalidVertex) {
      agg[static_cast<std::size_t>(best)] = static_cast<Vertex>(next_agg);
    }
    ++next_agg;
  }
  // Pass 2: absorb remaining singleton aggregates into their strongest
  // neighboring aggregate when it reduces the aggregate count. (Every
  // vertex is labelled after pass 1; this pass merges 1-vertex aggregates.)
  std::vector<Index> agg_size(static_cast<std::size_t>(next_agg), 0);
  for (Index v = 0; v < n; ++v) {
    ++agg_size[static_cast<std::size_t>(agg[static_cast<std::size_t>(v)])];
  }
  for (Index v = 0; v < n; ++v) {
    const Vertex mine = agg[static_cast<std::size_t>(v)];
    if (agg_size[static_cast<std::size_t>(mine)] != 1) continue;
    const auto cols = a.row_cols(v);
    const auto vals = a.row_vals(v);
    Vertex best_agg = kInvalidVertex;
    double best_w = 0.0;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const Vertex u = cols[k];
      if (u == v) continue;
      const double w = std::abs(vals[k]);
      if (w > best_w) {
        best_w = w;
        best_agg = agg[static_cast<std::size_t>(u)];
      }
    }
    if (best_agg != kInvalidVertex && best_agg != mine) {
      agg[static_cast<std::size_t>(v)] = best_agg;
      --agg_size[static_cast<std::size_t>(mine)];
      ++agg_size[static_cast<std::size_t>(best_agg)];
    }
  }
  // Compact aggregate ids (some may have emptied in pass 2).
  std::vector<Vertex> remap(static_cast<std::size_t>(next_agg),
                            kInvalidVertex);
  Index compact = 0;
  for (Index v = 0; v < n; ++v) {
    const Vertex g = agg[static_cast<std::size_t>(v)];
    if (remap[static_cast<std::size_t>(g)] == kInvalidVertex) {
      remap[static_cast<std::size_t>(g)] = static_cast<Vertex>(compact++);
    }
    agg[static_cast<std::size_t>(v)] = remap[static_cast<std::size_t>(g)];
  }
  return {std::move(agg), compact};
}

/// Galerkin triple product with piecewise-constant prolongation:
/// A_c(I, J) = Σ_{agg(i)=I, agg(j)=J} A(i, j).
CsrMatrix galerkin_coarse(const CsrMatrix& a, std::span<const Vertex> agg,
                          Index coarse_n) {
  std::vector<Triplet> ts;
  ts.reserve(static_cast<std::size_t>(a.nnz()));
  for (Index r = 0; r < a.rows(); ++r) {
    const auto cols = a.row_cols(r);
    const auto vals = a.row_vals(r);
    const Vertex ar = agg[static_cast<std::size_t>(r)];
    for (std::size_t k = 0; k < cols.size(); ++k) {
      ts.push_back({ar, agg[static_cast<std::size_t>(cols[k])], vals[k]});
    }
  }
  CsrMatrix coarse = CsrMatrix::from_triplets(coarse_n, coarse_n, ts);
  coarse.drop_explicit_zeros();
  return coarse;
}

}  // namespace

AmgHierarchy AmgHierarchy::build(const CsrMatrix& a, const AmgOptions& opts) {
  SSP_REQUIRE(a.rows() == a.cols(), "amg: matrix not square");
  SSP_REQUIRE(a.rows() >= 1, "amg: empty matrix");
  AmgHierarchy h;
  h.opts_ = opts;
  h.laplacian_mode_ = opts.laplacian_mode;

  CsrMatrix current = a;
  for (Index level = 0; level < opts.max_levels; ++level) {
    Level lv;
    lv.a = std::move(current);
    lv.inv_diag = lv.a.diagonal();
    for (double& d : lv.inv_diag) {
      SSP_REQUIRE(d > 0.0, "amg: non-positive diagonal");
      d = 1.0 / d;
    }
    const Index n = lv.a.rows();
    if (n <= opts.coarse_size || level == opts.max_levels - 1) {
      h.levels_.push_back(std::move(lv));
      break;
    }
    auto [agg, coarse_n] = aggregate_heavy_edge(lv.a);
    if (coarse_n >= n) {
      // No coarsening progress (e.g. diagonal matrix): stop here.
      h.levels_.push_back(std::move(lv));
      break;
    }
    CsrMatrix coarse = galerkin_coarse(lv.a, agg, coarse_n);
    lv.aggregate = std::move(agg);
    lv.coarse_n = coarse_n;
    h.levels_.push_back(std::move(lv));
    current = std::move(coarse);
  }

  // Dense coarse solve with tiny Tikhonov regularization (handles the
  // singular Laplacian; solutions are re-centered after the solve).
  const Level& last = h.levels_.back();
  DenseMatrix dense = DenseMatrix::from_csr(last.a, /*max_dim=*/8192);
  double dmax = 0.0;
  for (Index i = 0; i < dense.rows(); ++i) {
    dmax = std::max(dmax, dense(i, i));
  }
  const double shift =
      h.laplacian_mode_ ? std::max(dmax, 1.0) * 1e-10 : 0.0;
  for (Index i = 0; i < dense.rows(); ++i) dense(i, i) += shift;
  dense.cholesky_in_place();
  h.coarse_factor_ = std::move(dense);
  return h;
}

void AmgHierarchy::smooth(const Level& lv, std::span<const double> b,
                          std::span<double> x, int sweeps) const {
  const Index n = lv.a.rows();
  if (opts_.smoother == AmgOptions::Smoother::kJacobi) {
    Vec r(static_cast<std::size_t>(n));
    for (int s = 0; s < sweeps; ++s) {
      lv.a.multiply(x, r);
      for (Index i = 0; i < n; ++i) {
        x[static_cast<std::size_t>(i)] +=
            opts_.jacobi_weight *
            (b[static_cast<std::size_t>(i)] - r[static_cast<std::size_t>(i)]) *
            lv.inv_diag[static_cast<std::size_t>(i)];
      }
    }
    return;
  }
  // Symmetric Gauss–Seidel: one forward sweep followed by one backward
  // sweep per requested "sweep" (keeps the smoother — and hence the
  // V-cycle — symmetric).
  auto gs_pass = [&](bool forward) {
    const Index begin = forward ? 0 : n - 1;
    const Index end = forward ? n : -1;
    const Index step = forward ? 1 : -1;
    for (Index i = begin; i != end; i += step) {
      const auto cols = lv.a.row_cols(i);
      const auto vals = lv.a.row_vals(i);
      double s = b[static_cast<std::size_t>(i)];
      double diag = 0.0;
      for (std::size_t k = 0; k < cols.size(); ++k) {
        const Index j = cols[k];
        if (j == i) {
          diag = vals[k];
        } else {
          s -= vals[k] * x[static_cast<std::size_t>(j)];
        }
      }
      SSP_DASSERT(diag > 0.0, "amg: zero diagonal in GS sweep");
      x[static_cast<std::size_t>(i)] = s / diag;
    }
  };
  for (int s = 0; s < sweeps; ++s) {
    gs_pass(true);
    gs_pass(false);
  }
}

void AmgHierarchy::cycle_at(std::size_t level, std::span<const double> b,
                            std::span<double> x) const {
  const Level& lv = levels_[level];
  if (level + 1 == levels_.size()) {
    // Coarsest: dense (regularized) Cholesky.
    Vec xb = coarse_factor_.cholesky_solve(b);
    std::copy(xb.begin(), xb.end(), x.begin());
    if (laplacian_mode_) project_out_mean(x);
    return;
  }
  smooth(lv, b, x, opts_.pre_sweeps);

  // Coarse-grid correction.
  const Index n = lv.a.rows();
  Vec r(static_cast<std::size_t>(n));
  lv.a.multiply(x, r);
  for (Index i = 0; i < n; ++i) {
    r[static_cast<std::size_t>(i)] =
        b[static_cast<std::size_t>(i)] - r[static_cast<std::size_t>(i)];
  }
  Vec rc(static_cast<std::size_t>(lv.coarse_n), 0.0);
  for (Index i = 0; i < n; ++i) {
    rc[static_cast<std::size_t>(lv.aggregate[static_cast<std::size_t>(i)])] +=
        r[static_cast<std::size_t>(i)];
  }
  Vec xc(static_cast<std::size_t>(lv.coarse_n), 0.0);
  cycle_at(level + 1, rc, xc);
  for (Index i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] +=
        xc[static_cast<std::size_t>(lv.aggregate[static_cast<std::size_t>(i)])];
  }

  smooth(lv, b, x, opts_.post_sweeps);
}

void AmgHierarchy::vcycle(std::span<const double> b,
                          std::span<double> x) const {
  SSP_REQUIRE(!levels_.empty(), "amg: hierarchy not built");
  SSP_REQUIRE(static_cast<Index>(b.size()) == size() &&
                  static_cast<Index>(x.size()) == size(),
              "amg: size mismatch");
  if (laplacian_mode_) {
    Vec bp(b.begin(), b.end());
    project_out_mean(bp);
    cycle_at(0, bp, x);
    project_out_mean(x);
  } else {
    cycle_at(0, b, x);
  }
}

Index AmgHierarchy::solve(std::span<const double> b, std::span<double> x,
                          double rel_tol, Index max_cycles) const {
  const CsrMatrix& a = levels_.front().a;
  Vec bp(b.begin(), b.end());
  if (laplacian_mode_) project_out_mean(bp);
  const double bnorm = norm2(bp);
  if (bnorm == 0.0) {
    fill(x, 0.0);
    return 0;
  }
  Vec r(static_cast<std::size_t>(size()));
  for (Index cycle = 1; cycle <= max_cycles; ++cycle) {
    vcycle(bp, x);
    a.multiply(x, r);
    for (std::size_t i = 0; i < r.size(); ++i) r[i] = bp[i] - r[i];
    if (norm2(r) <= rel_tol * bnorm) return cycle;
  }
  return max_cycles;
}

double AmgHierarchy::operator_complexity() const {
  if (levels_.empty()) return 0.0;
  double total = 0.0;
  for (const Level& lv : levels_) total += static_cast<double>(lv.a.nnz());
  return total / static_cast<double>(levels_.front().a.nnz());
}

void AmgPreconditioner::apply(std::span<const double> r,
                              std::span<double> z) const {
  fill(z, 0.0);
  amg_->vcycle(r, z);
}

}  // namespace ssp
