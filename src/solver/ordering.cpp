#include "solver/ordering.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <unordered_set>

#include "util/assert.hpp"

namespace ssp {

namespace {

/// BFS from `start` over the symmetric pattern; returns (order, last level
/// start) where order is the BFS visit sequence restricted to the start's
/// component.
std::pair<std::vector<Vertex>, std::size_t> bfs_levels(const CsrMatrix& a,
                                                       Vertex start) {
  const Index n = a.rows();
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  std::vector<Vertex> order;
  order.reserve(static_cast<std::size_t>(n));
  order.push_back(start);
  visited[static_cast<std::size_t>(start)] = 1;
  std::size_t level_begin = 0;
  std::size_t last_level_begin = 0;
  while (level_begin < order.size()) {
    const std::size_t level_end = order.size();
    last_level_begin = level_begin;
    for (std::size_t i = level_begin; i < level_end; ++i) {
      const Vertex v = order[i];
      for (Vertex u : a.row_cols(v)) {
        if (u != v && visited[static_cast<std::size_t>(u)] == 0) {
          visited[static_cast<std::size_t>(u)] = 1;
          order.push_back(u);
        }
      }
    }
    if (order.size() == level_end) break;
    level_begin = level_end;
  }
  return {std::move(order), last_level_begin};
}

}  // namespace

std::vector<Vertex> natural_ordering(Index n) {
  std::vector<Vertex> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), Vertex{0});
  return order;
}

std::vector<Vertex> rcm_ordering(const CsrMatrix& a) {
  SSP_REQUIRE(a.rows() == a.cols(), "rcm: matrix not square");
  const Index n = a.rows();
  std::vector<char> done(static_cast<std::size_t>(n), 0);
  std::vector<Vertex> result;
  result.reserve(static_cast<std::size_t>(n));

  auto degree = [&](Vertex v) {
    return static_cast<Index>(a.row_cols(v).size());
  };

  for (Vertex seed = 0; seed < n; ++seed) {
    if (done[static_cast<std::size_t>(seed)] != 0) continue;
    // Pseudo-peripheral start: double BFS from the component's seed.
    auto [first_pass, last_begin] = bfs_levels(a, seed);
    Vertex start = first_pass[last_begin];
    for (std::size_t i = last_begin; i < first_pass.size(); ++i) {
      if (degree(first_pass[i]) < degree(start)) start = first_pass[i];
    }

    // Cuthill–McKee: BFS, expanding neighbors in ascending-degree order.
    std::vector<Vertex> cm;
    cm.reserve(first_pass.size());
    cm.push_back(start);
    done[static_cast<std::size_t>(start)] = 1;
    std::vector<Vertex> nbrs;
    for (std::size_t head = 0; head < cm.size(); ++head) {
      nbrs.clear();
      for (Vertex u : a.row_cols(cm[head])) {
        if (u != cm[head] && done[static_cast<std::size_t>(u)] == 0) {
          done[static_cast<std::size_t>(u)] = 1;
          nbrs.push_back(u);
        }
      }
      std::sort(nbrs.begin(), nbrs.end(), [&](Vertex x, Vertex y) {
        const Index dx = degree(x);
        const Index dy = degree(y);
        return dx != dy ? dx < dy : x < y;
      });
      cm.insert(cm.end(), nbrs.begin(), nbrs.end());
    }
    // Reverse within the component.
    result.insert(result.end(), cm.rbegin(), cm.rend());
  }
  SSP_ASSERT(static_cast<Index>(result.size()) == n, "rcm: lost vertices");
  return result;
}

std::vector<Vertex> min_degree_ordering(const CsrMatrix& a) {
  SSP_REQUIRE(a.rows() == a.cols(), "min_degree: matrix not square");
  const Index n = a.rows();
  std::vector<std::unordered_set<Vertex>> adj(static_cast<std::size_t>(n));
  for (Index r = 0; r < n; ++r) {
    for (Vertex c : a.row_cols(r)) {
      if (c != r) {
        adj[static_cast<std::size_t>(r)].insert(c);
      }
    }
  }

  using HeapItem = std::pair<Index, Vertex>;  // (degree, vertex)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  for (Vertex v = 0; v < n; ++v) {
    heap.emplace(static_cast<Index>(adj[static_cast<std::size_t>(v)].size()),
                 v);
  }
  std::vector<char> eliminated(static_cast<std::size_t>(n), 0);
  std::vector<Vertex> order;
  order.reserve(static_cast<std::size_t>(n));

  while (!heap.empty()) {
    const auto [deg, v] = heap.top();
    heap.pop();
    if (eliminated[static_cast<std::size_t>(v)] != 0) continue;
    if (deg != static_cast<Index>(adj[static_cast<std::size_t>(v)].size())) {
      // Stale entry: reinsert with the current degree.
      heap.emplace(
          static_cast<Index>(adj[static_cast<std::size_t>(v)].size()), v);
      continue;
    }
    eliminated[static_cast<std::size_t>(v)] = 1;
    order.push_back(v);
    // Form the elimination clique among v's remaining neighbors.
    std::vector<Vertex> nbrs(adj[static_cast<std::size_t>(v)].begin(),
                             adj[static_cast<std::size_t>(v)].end());
    for (Vertex u : nbrs) adj[static_cast<std::size_t>(u)].erase(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        const Vertex x = nbrs[i];
        const Vertex y = nbrs[j];
        if (adj[static_cast<std::size_t>(x)].insert(y).second) {
          adj[static_cast<std::size_t>(y)].insert(x);
        }
      }
    }
    for (Vertex u : nbrs) {
      heap.emplace(static_cast<Index>(adj[static_cast<std::size_t>(u)].size()),
                   u);
    }
    adj[static_cast<std::size_t>(v)].clear();
  }
  SSP_ASSERT(static_cast<Index>(order.size()) == n, "min_degree: lost vertices");
  return order;
}

CsrMatrix permute_symmetric(const CsrMatrix& a,
                            std::span<const Vertex> order) {
  SSP_REQUIRE(a.rows() == a.cols(), "permute_symmetric: matrix not square");
  const Index n = a.rows();
  SSP_REQUIRE(static_cast<Index>(order.size()) == n,
              "permute_symmetric: order size mismatch");
  std::vector<Vertex> inverse(static_cast<std::size_t>(n), kInvalidVertex);
  for (Index i = 0; i < n; ++i) {
    const Vertex old = order[static_cast<std::size_t>(i)];
    SSP_REQUIRE(old >= 0 && old < n && inverse[static_cast<std::size_t>(old)] ==
                                           kInvalidVertex,
                "permute_symmetric: not a permutation");
    inverse[static_cast<std::size_t>(old)] = static_cast<Vertex>(i);
  }
  std::vector<Triplet> ts;
  ts.reserve(static_cast<std::size_t>(a.nnz()));
  for (Index r = 0; r < n; ++r) {
    const auto cols = a.row_cols(r);
    const auto vals = a.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      ts.push_back({inverse[static_cast<std::size_t>(r)],
                    inverse[static_cast<std::size_t>(cols[k])], vals[k]});
    }
  }
  return CsrMatrix::from_triplets(n, n, ts);
}

}  // namespace ssp
