#pragma once

/// \file ichol.hpp
/// Zero-fill incomplete Cholesky factorization IC(0) — the classic
/// general-purpose SPD preconditioner, included as the conventional
/// baseline the paper's sparsifier preconditioners are implicitly measured
/// against (every circuit-simulation PCG practitioner reaches for IC
/// first; the Table 2 context shows why sparsifiers do better on
/// ill-conditioned meshes).
///
/// The factor keeps exactly the lower-triangular sparsity pattern of A.
/// Breakdown (non-positive pivot, possible for general SPD input since
/// IC(0) is only guaranteed for M-matrices) is repaired by a diagonal
/// shift-and-retry loop.

#include <span>

#include "la/csr_matrix.hpp"
#include "solver/preconditioner.hpp"
#include "util/types.hpp"

namespace ssp {

class IncompleteCholesky final : public Preconditioner {
 public:
  /// Factors A (full symmetric CSR, SPD or grounded Laplacian). `shift0`
  /// is the initial diagonal shift; on breakdown the shift is increased
  /// (×10) up to `max_retries` times before throwing std::runtime_error.
  explicit IncompleteCholesky(const CsrMatrix& a, double shift0 = 0.0,
                              int max_retries = 6);

  /// z := (L Lᵀ)⁻¹ r.
  void apply(std::span<const double> r, std::span<double> z) const override;

  [[nodiscard]] Index size() const override { return n_; }

  /// Diagonal shift that finally succeeded (0 when none was needed).
  [[nodiscard]] double shift_used() const { return shift_used_; }

  [[nodiscard]] Index factor_nnz() const {
    return static_cast<Index>(values_.size());
  }

 private:
  bool try_factor(const CsrMatrix& a, double shift);

  Index n_ = 0;
  double shift_used_ = 0.0;
  // Lower-triangular factor in CSR (row-wise), diagonal stored last in
  // each row for the triangular solves.
  std::vector<Index> row_ptr_;
  std::vector<Vertex> cols_;
  std::vector<double> values_;
  std::vector<double> diag_;  // D entries (the L(i,i))
};

}  // namespace ssp
