#include "solver/pcg.hpp"

#include <cmath>

#include "la/kernels/kernels.hpp"
#include "la/vector_ops.hpp"
#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace ssp {

PcgResult pcg_solve(const CsrMatrix& a, std::span<const double> b,
                    std::span<double> x, const Preconditioner& m,
                    const PcgOptions& opts) {
  const Index n = a.rows();
  SSP_REQUIRE(a.cols() == n, "pcg: matrix must be square");
  SSP_REQUIRE(static_cast<Index>(b.size()) == n, "pcg: b size");
  SSP_REQUIRE(static_cast<Index>(x.size()) == n, "pcg: x size");
  SSP_REQUIRE(m.size() == n, "pcg: preconditioner size");
  SSP_REQUIRE(opts.rel_tolerance > 0.0, "pcg: tolerance must be positive");

  Vec bp(b.begin(), b.end());
  if (opts.project_constants) {
    project_out_mean(bp);
    project_out_mean(x);
  }
  const double bnorm = norm2(bp);
  PcgResult result;
  if (bnorm == 0.0) {
    fill(x, 0.0);
    result.converged = true;
    return result;
  }

  Vec r(static_cast<std::size_t>(n));
  Vec z(static_cast<std::size_t>(n));
  Vec p(static_cast<std::size_t>(n));
  Vec ap(static_cast<std::size_t>(n));

  const auto& krn = kernels::ops();
  const auto un = static_cast<std::size_t>(n);

  a.multiply(x, r);  // r = A x
  krn.sub(bp.data(), r.data(), r.data(), un);  // r := b − A x
  if (opts.project_constants) project_out_mean(r);

  m.apply(r, z);
  if (opts.project_constants) project_out_mean(z);
  p = z;
  double rz = dot(r, z);
  result.relative_residual = norm2(r) / bnorm;
  if (result.relative_residual <= opts.rel_tolerance) {
    result.converged = true;
    return result;
  }

  for (Index it = 1; it <= opts.max_iterations; ++it) {
    a.multiply(p, ap);
    const double pap = dot(p, ap);
    // Non-positive curvature: indefinite/semidefinite A or a collapsed
    // search direction. Stop with the best iterate found and flag the
    // breakdown; the stale recurrence residual is replaced below by the
    // true residual of the returned x.
    if (pap <= 0.0) {
      result.breakdown = true;
      break;
    }
    const double alpha = rz / pap;
    axpy(alpha, p, x);
    // Fused residual update: one pass updates r and yields its sum (for
    // the mean projection), a second shifts and yields ||r||² — each
    // bit-identical to the unfused axpy/project_out_mean/norm2 sequence.
    double rr;
    if (opts.project_constants) {
      const double rsum = krn.axpy_sum(-alpha, ap.data(), r.data(), un);
      rr = krn.shift_nrm2sq(-(rsum / static_cast<double>(n)), r.data(), un);
    } else {
      krn.axpy(-alpha, ap.data(), r.data(), un);
      rr = krn.nrm2sq(r.data(), un);
    }

    result.iterations = it;
    result.relative_residual = std::sqrt(rr) / bnorm;
    if (result.relative_residual <= opts.rel_tolerance) {
      result.converged = true;
      break;
    }

    m.apply(r, z);
    if (opts.project_constants) project_out_mean(z);
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    krn.xpay(z.data(), beta, p.data(), un);  // p := z + β p
  }
  if (opts.project_constants) project_out_mean(x);
  if (result.breakdown) {
    // Recompute ||b − A x|| for the iterate actually returned: the
    // recurrence residual r predates the breakdown and may not describe x
    // at all once rounding has degraded the search direction.
    a.multiply(x, ap);
    krn.sub(bp.data(), ap.data(), r.data(), un);
    if (opts.project_constants) project_out_mean(r);
    result.relative_residual = norm2(r) / bnorm;
    result.converged = result.relative_residual <= opts.rel_tolerance;
  }
  obs::counter_add("solver.pcg.solves", 1);
  obs::counter_add("solver.pcg.iterations",
                   static_cast<std::uint64_t>(result.iterations));
  if (result.breakdown) obs::counter_add("solver.pcg.breakdowns", 1);
  return result;
}

PcgResult cg_solve(const CsrMatrix& a, std::span<const double> b,
                   std::span<double> x, const PcgOptions& opts) {
  const IdentityPreconditioner id(a.rows());
  return pcg_solve(a, b, x, id, opts);
}

}  // namespace ssp
