#include "solver/ichol.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/assert.hpp"

namespace ssp {

IncompleteCholesky::IncompleteCholesky(const CsrMatrix& a, double shift0,
                                       int max_retries) {
  SSP_REQUIRE(a.rows() == a.cols(), "ic0: matrix not square");
  SSP_REQUIRE(a.rows() >= 1, "ic0: empty matrix");
  n_ = a.rows();

  double shift = shift0;
  double dmax = 0.0;
  for (double d : a.diagonal()) dmax = std::max(dmax, d);
  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    if (try_factor(a, shift)) {
      shift_used_ = shift;
      return;
    }
    shift = (shift == 0.0) ? 1e-6 * std::max(dmax, 1.0) : shift * 10.0;
  }
  throw std::runtime_error("ic0: breakdown persists after shift retries");
}

bool IncompleteCholesky::try_factor(const CsrMatrix& a, double shift) {
  // Build the strict-lower pattern row by row; values filled during the
  // IKJ-style incomplete factorization.
  row_ptr_.assign(static_cast<std::size_t>(n_) + 1, 0);
  cols_.clear();
  values_.clear();
  diag_.assign(static_cast<std::size_t>(n_), 0.0);

  for (Index r = 0; r < n_; ++r) {
    const auto rc = a.row_cols(r);
    for (Vertex c : rc) {
      if (c < r) cols_.push_back(c);
    }
    row_ptr_[static_cast<std::size_t>(r) + 1] =
        static_cast<Index>(cols_.size());
  }
  values_.assign(cols_.size(), 0.0);

  // Scatter workspace over columns of the current row.
  Vec work(static_cast<std::size_t>(n_), 0.0);

  for (Index r = 0; r < n_; ++r) {
    const Index rb = row_ptr_[static_cast<std::size_t>(r)];
    const Index re = row_ptr_[static_cast<std::size_t>(r) + 1];
    // Scatter A's strict lower row + diagonal.
    double d = shift;
    {
      const auto rc = a.row_cols(r);
      const auto rv = a.row_vals(r);
      for (std::size_t k = 0; k < rc.size(); ++k) {
        if (rc[k] < r) {
          work[static_cast<std::size_t>(rc[k])] = rv[k];
        } else if (rc[k] == r) {
          d += rv[k];
        }
      }
    }
    // Process pattern columns in increasing order (CSR rows are sorted):
    // L(r,j) = (A(r,j) − Σ_{i<j} L(r,i)·L(j,i)) / L(j,j). The subtraction
    // is realized by walking, for each finished column i in this row, the
    // later entries L(j,i)… equivalently we walk column lists.
    for (Index k = rb; k < re; ++k) {
      const Vertex j = cols_[static_cast<std::size_t>(k)];
      double v = work[static_cast<std::size_t>(j)];
      // Subtract Σ L(r,i) L(j,i) over shared earlier columns: iterate this
      // row's already-computed entries i < j and look them up in row j.
      // Rows are short (IC0 pattern), so a merge over two sorted lists.
      const Index jb = row_ptr_[static_cast<std::size_t>(j)];
      const Index je = row_ptr_[static_cast<std::size_t>(j) + 1];
      Index pr = rb;
      Index pj = jb;
      while (pr < k && pj < je) {
        const Vertex cr = cols_[static_cast<std::size_t>(pr)];
        const Vertex cj = cols_[static_cast<std::size_t>(pj)];
        if (cr == cj) {
          v -= values_[static_cast<std::size_t>(pr)] *
               values_[static_cast<std::size_t>(pj)];
          ++pr;
          ++pj;
        } else if (cr < cj) {
          ++pr;
        } else {
          ++pj;
        }
      }
      const double ljj = diag_[static_cast<std::size_t>(j)];
      SSP_DASSERT(ljj > 0.0, "ic0: zero pivot encountered late");
      const double lrj = v / ljj;
      values_[static_cast<std::size_t>(k)] = lrj;
      d -= lrj * lrj;
      work[static_cast<std::size_t>(j)] = 0.0;
    }
    // Clear any scattered A entries that were not in the (identical)
    // pattern — none by construction, but reset defensively for entries
    // whose value stayed untouched.
    {
      const auto rc = a.row_cols(r);
      for (Vertex c : rc) {
        if (c < r) work[static_cast<std::size_t>(c)] = 0.0;
      }
    }
    if (d <= 0.0) return false;  // breakdown -> caller retries with shift
    diag_[static_cast<std::size_t>(r)] = std::sqrt(d);
  }
  return true;
}

void IncompleteCholesky::apply(std::span<const double> r,
                               std::span<double> z) const {
  SSP_REQUIRE(static_cast<Index>(r.size()) == n_ &&
                  static_cast<Index>(z.size()) == n_,
              "ic0: size mismatch");
  // Forward solve L y = r (strict-lower rows + diag_).
  std::copy(r.begin(), r.end(), z.begin());
  for (Index i = 0; i < n_; ++i) {
    double s = z[static_cast<std::size_t>(i)];
    for (Index k = row_ptr_[static_cast<std::size_t>(i)];
         k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k) {
      s -= values_[static_cast<std::size_t>(k)] *
           z[static_cast<std::size_t>(cols_[static_cast<std::size_t>(k)])];
    }
    z[static_cast<std::size_t>(i)] = s / diag_[static_cast<std::size_t>(i)];
  }
  // Backward solve Lᵀ z = y.
  for (Index i = n_ - 1; i >= 0; --i) {
    const double zi =
        z[static_cast<std::size_t>(i)] / diag_[static_cast<std::size_t>(i)];
    z[static_cast<std::size_t>(i)] = zi;
    for (Index k = row_ptr_[static_cast<std::size_t>(i)];
         k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k) {
      z[static_cast<std::size_t>(cols_[static_cast<std::size_t>(k)])] -=
          values_[static_cast<std::size_t>(k)] * zi;
    }
  }
}

}  // namespace ssp
