#pragma once

/// \file amg.hpp
/// Aggregation-based algebraic multigrid for graph Laplacians — the repo's
/// stand-in for the graph-theoretic AMG solvers (LAMG [13] / SAMG [24]) the
/// paper uses to apply L_P⁺ inside power iterations and densification.
///
/// Setup: greedy heavy-edge aggregation pairs each vertex with its
/// strongest unaggregated neighbor (singletons join the strongest
/// neighboring aggregate); piecewise-constant prolongation P; Galerkin
/// coarse operator A_c = Pᵀ A P. Solve: V-cycles with weighted-Jacobi
/// smoothing; the coarsest level is solved densely (Cholesky with a tiny
/// regularization for the singular Laplacian, then re-centered).

#include <memory>
#include <span>
#include <vector>

#include "la/csr_matrix.hpp"
#include "la/dense_matrix.hpp"
#include "solver/preconditioner.hpp"

namespace ssp {

struct AmgOptions {
  enum class Smoother {
    kJacobi,       ///< weighted Jacobi (weight below)
    kGaussSeidel,  ///< symmetric Gauss–Seidel (forward + backward sweep);
                   ///< stronger per sweep, keeps the V-cycle symmetric so
                   ///< it remains a valid PCG preconditioner
  };
  Index max_levels = 24;
  Index coarse_size = 64;     ///< stop coarsening at this many vertices
  int pre_sweeps = 1;
  int post_sweeps = 1;
  /// Jacobi default: ~2x cheaper per sweep in this implementation and the
  /// V-cycle count difference does not make GS win in wall time (see the
  /// inner-solver ablation).
  Smoother smoother = Smoother::kJacobi;
  double jacobi_weight = 0.67;
  /// Deflate the constant vector at the finest level (graph Laplacians).
  bool laplacian_mode = true;
};

class AmgHierarchy {
 public:
  /// Builds the multigrid hierarchy for a symmetric (SPD or Laplacian)
  /// matrix. Throws std::invalid_argument for non-square input.
  [[nodiscard]] static AmgHierarchy build(const CsrMatrix& a,
                                          const AmgOptions& opts = {});

  /// One V-cycle applied to A x = b, updating x in place (x is the initial
  /// guess).
  void vcycle(std::span<const double> b, std::span<double> x) const;

  /// Runs V-cycles until ||b − A x|| ≤ rel_tol·||b|| or `max_cycles`.
  /// \returns the number of cycles used.
  Index solve(std::span<const double> b, std::span<double> x, double rel_tol,
              Index max_cycles) const;

  [[nodiscard]] Index num_levels() const {
    return static_cast<Index>(levels_.size());
  }

  /// Σ nnz(A_level) / nnz(A_finest) — the standard grid-complexity metric.
  [[nodiscard]] double operator_complexity() const;

  [[nodiscard]] Index size() const {
    return levels_.empty() ? 0 : levels_.front().a.rows();
  }

 private:
  struct Level {
    CsrMatrix a;
    Vec inv_diag;                    ///< 1/diag(A) for Jacobi smoothing
    std::vector<Vertex> aggregate;  ///< fine vertex -> coarse aggregate id
    Index coarse_n = 0;
  };

  void cycle_at(std::size_t level, std::span<const double> b,
                std::span<double> x) const;
  void smooth(const Level& lv, std::span<const double> b,
              std::span<double> x, int sweeps) const;

  std::vector<Level> levels_;
  DenseMatrix coarse_factor_;  ///< dense Cholesky factor of the last level
  bool laplacian_mode_ = true;
  AmgOptions opts_;
};

/// Adapter: one V-cycle (from zero initial guess) as a PCG preconditioner.
class AmgPreconditioner final : public Preconditioner {
 public:
  explicit AmgPreconditioner(const AmgHierarchy& amg) : amg_(&amg) {}
  void apply(std::span<const double> r, std::span<double> z) const override;
  [[nodiscard]] Index size() const override { return amg_->size(); }

 private:
  const AmgHierarchy* amg_;
};

}  // namespace ssp
