#include "solver/cholesky.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "la/vector_ops.hpp"
#include "solver/ordering.hpp"
#include "util/assert.hpp"

namespace ssp {

namespace {

/// Pattern of row k of the Cholesky factor via elimination-tree reach
/// (CSparse `cs_ereach`): for every entry A(k, i) with i < k, walk up the
/// etree until hitting an already-marked vertex, collecting the path. The
/// returned range s[top..n) lists the pattern in topological order.
Index ereach(const CsrMatrix& a, Index k, std::span<const Vertex> parent,
             std::span<Vertex> s, std::span<Vertex> w, Vertex mark) {
  Index top = a.rows();
  w[static_cast<std::size_t>(k)] = mark;
  std::vector<Vertex> stack;  // short etree-path buffer
  for (Vertex i : a.row_cols(k)) {
    if (i >= k) continue;
    stack.clear();
    Vertex x = i;
    while (x != kInvalidVertex && w[static_cast<std::size_t>(x)] != mark) {
      stack.push_back(x);
      w[static_cast<std::size_t>(x)] = mark;
      x = parent[static_cast<std::size_t>(x)];
    }
    while (!stack.empty()) {
      s[static_cast<std::size_t>(--top)] = stack.back();
      stack.pop_back();
    }
  }
  return top;
}

}  // namespace

std::vector<Vertex> elimination_tree(const CsrMatrix& a) {
  SSP_REQUIRE(a.rows() == a.cols(), "etree: matrix not square");
  const Index n = a.rows();
  std::vector<Vertex> parent(static_cast<std::size_t>(n), kInvalidVertex);
  std::vector<Vertex> ancestor(static_cast<std::size_t>(n), kInvalidVertex);
  for (Index k = 0; k < n; ++k) {
    for (Vertex i : a.row_cols(k)) {
      Vertex x = i;
      while (x != kInvalidVertex && x < static_cast<Vertex>(k)) {
        const Vertex next = ancestor[static_cast<std::size_t>(x)];
        ancestor[static_cast<std::size_t>(x)] = static_cast<Vertex>(k);
        if (next == kInvalidVertex) {
          parent[static_cast<std::size_t>(x)] = static_cast<Vertex>(k);
          break;
        }
        x = next;
      }
    }
  }
  return parent;
}

SparseCholesky SparseCholesky::factor_impl(const CsrMatrix& a,
                                           const CholeskyOptions& opts) {
  const Index n = a.rows();
  SparseCholesky c;
  c.n_ = n;
  c.outer_n_ = n;

  switch (opts.ordering) {
    case CholeskyOptions::Ordering::kNatural:
      c.order_ = natural_ordering(n);
      break;
    case CholeskyOptions::Ordering::kRcm:
      c.order_ = rcm_ordering(a);
      break;
    case CholeskyOptions::Ordering::kMinDegree:
      c.order_ = min_degree_ordering(a);
      break;
  }
  c.inverse_order_.assign(static_cast<std::size_t>(n), kInvalidVertex);
  for (Index i = 0; i < n; ++i) {
    c.inverse_order_[static_cast<std::size_t>(
        c.order_[static_cast<std::size_t>(i)])] = static_cast<Vertex>(i);
  }
  CsrMatrix ap = permute_symmetric(a, c.order_);
  const std::vector<Vertex> parent = elimination_tree(ap);

  // Symbolic pass: column counts via per-row ereach.
  std::vector<Vertex> s(static_cast<std::size_t>(n));
  std::vector<Vertex> w(static_cast<std::size_t>(n), kInvalidVertex);
  std::vector<Index> col_count(static_cast<std::size_t>(n), 1);  // diagonal
  for (Index k = 0; k < n; ++k) {
    const Index top = ereach(ap, k, parent, s, w, static_cast<Vertex>(k));
    for (Index t = top; t < n; ++t) {
      ++col_count[static_cast<std::size_t>(s[static_cast<std::size_t>(t)])];
    }
  }

  c.col_ptr_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (Index j = 0; j < n; ++j) {
    c.col_ptr_[static_cast<std::size_t>(j) + 1] =
        c.col_ptr_[static_cast<std::size_t>(j)] +
        col_count[static_cast<std::size_t>(j)];
  }
  const Index lnz = c.col_ptr_[static_cast<std::size_t>(n)];
  c.rows_.assign(static_cast<std::size_t>(lnz), 0);
  c.values_.assign(static_cast<std::size_t>(lnz), 0.0);

  // next_[j]: next free slot in column j. Slot 0 of each column = diagonal.
  std::vector<Index> next(static_cast<std::size_t>(n));
  for (Index j = 0; j < n; ++j) {
    const Index head = c.col_ptr_[static_cast<std::size_t>(j)];
    c.rows_[static_cast<std::size_t>(head)] = static_cast<Vertex>(j);
    next[static_cast<std::size_t>(j)] = head + 1;
  }

  // Numeric up-looking pass.
  std::fill(w.begin(), w.end(), kInvalidVertex);
  Vec x(static_cast<std::size_t>(n), 0.0);
  for (Index k = 0; k < n; ++k) {
    const Index top = ereach(ap, k, parent, s, w, static_cast<Vertex>(k));
    // Scatter row k of A (strictly-lower part) into x; diagonal into d.
    double d = opts.diagonal_shift;
    {
      const auto cols = ap.row_cols(k);
      const auto vals = ap.row_vals(k);
      for (std::size_t t = 0; t < cols.size(); ++t) {
        if (cols[t] < k) {
          x[static_cast<std::size_t>(cols[t])] = vals[t];
        } else if (cols[t] == k) {
          d += vals[t];
        }
      }
    }
    // Sparse triangular solve over the pattern (topological order).
    for (Index t = top; t < n; ++t) {
      const Vertex j = s[static_cast<std::size_t>(t)];
      const Index jhead = c.col_ptr_[static_cast<std::size_t>(j)];
      const double ljj = c.values_[static_cast<std::size_t>(jhead)];
      const double lkj = x[static_cast<std::size_t>(j)] / ljj;
      x[static_cast<std::size_t>(j)] = 0.0;
      for (Index p = jhead + 1; p < next[static_cast<std::size_t>(j)]; ++p) {
        x[static_cast<std::size_t>(c.rows_[static_cast<std::size_t>(p)])] -=
            c.values_[static_cast<std::size_t>(p)] * lkj;
      }
      d -= lkj * lkj;
      const Index slot = next[static_cast<std::size_t>(j)]++;
      c.rows_[static_cast<std::size_t>(slot)] = static_cast<Vertex>(k);
      c.values_[static_cast<std::size_t>(slot)] = lkj;
    }
    if (d <= 0.0) {
      throw std::runtime_error(
          "sparse Cholesky: non-positive pivot at column " +
          std::to_string(k) + " (matrix not SPD)");
    }
    c.values_[static_cast<std::size_t>(
        c.col_ptr_[static_cast<std::size_t>(k)])] = std::sqrt(d);
  }

  Index tril_nnz = 0;
  for (Index r = 0; r < n; ++r) {
    for (Vertex cidx : ap.row_cols(r)) {
      if (cidx <= r) ++tril_nnz;
    }
  }
  c.fill_ratio_ = tril_nnz > 0 ? static_cast<double>(lnz) /
                                     static_cast<double>(tril_nnz)
                               : 1.0;
  return c;
}

SparseCholesky SparseCholesky::factor(const CsrMatrix& a,
                                      const CholeskyOptions& opts) {
  SSP_REQUIRE(a.rows() == a.cols(), "cholesky: matrix not square");
  SSP_REQUIRE(a.rows() >= 1, "cholesky: empty matrix");
  return factor_impl(a, opts);
}

SparseCholesky SparseCholesky::factor_laplacian(const CsrMatrix& l,
                                                const CholeskyOptions& opts,
                                                Index pin) {
  SSP_REQUIRE(l.rows() == l.cols(), "cholesky: matrix not square");
  const Index n = l.rows();
  SSP_REQUIRE(n >= 2, "cholesky: Laplacian needs >= 2 vertices");
  if (pin < 0) pin = n - 1;
  SSP_REQUIRE(pin < n, "cholesky: pin out of range");

  // Build the grounded matrix (drop row/col `pin`, compact indices).
  std::vector<Triplet> ts;
  ts.reserve(static_cast<std::size_t>(l.nnz()));
  auto compact = [pin](Index i) { return i < pin ? i : i - 1; };
  for (Index r = 0; r < n; ++r) {
    if (r == pin) continue;
    const auto cols = l.row_cols(r);
    const auto vals = l.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] == pin) continue;
      ts.push_back({compact(r), compact(cols[k]), vals[k]});
    }
  }
  const CsrMatrix grounded = CsrMatrix::from_triplets(n - 1, n - 1, ts);
  SparseCholesky c = factor_impl(grounded, opts);
  c.outer_n_ = n;
  c.laplacian_mode_ = true;
  c.pin_ = pin;
  return c;
}

void SparseCholesky::solve(std::span<const double> b,
                           std::span<double> x) const {
  SSP_REQUIRE(static_cast<Index>(b.size()) == outer_n_, "cholesky solve: b size");
  SSP_REQUIRE(static_cast<Index>(x.size()) == outer_n_, "cholesky solve: x size");

  Vec rhs;
  if (laplacian_mode_) {
    // Project onto range(L) and drop the grounded entry.
    Vec bp(b.begin(), b.end());
    project_out_mean(bp);
    rhs.resize(static_cast<std::size_t>(n_));
    Index t = 0;
    for (Index i = 0; i < outer_n_; ++i) {
      if (i == pin_) continue;
      rhs[static_cast<std::size_t>(t++)] = bp[static_cast<std::size_t>(i)];
    }
  } else {
    rhs.assign(b.begin(), b.end());
  }

  // Apply permutation: y[new] = rhs[order[new]].
  Vec y(static_cast<std::size_t>(n_));
  for (Index i = 0; i < n_; ++i) {
    y[static_cast<std::size_t>(i)] =
        rhs[static_cast<std::size_t>(order_[static_cast<std::size_t>(i)])];
  }

  // Forward solve L z = y (CSC, diagonal first per column).
  for (Index j = 0; j < n_; ++j) {
    const Index head = col_ptr_[static_cast<std::size_t>(j)];
    const Index tail = col_ptr_[static_cast<std::size_t>(j) + 1];
    const double zj = y[static_cast<std::size_t>(j)] /
                      values_[static_cast<std::size_t>(head)];
    y[static_cast<std::size_t>(j)] = zj;
    for (Index p = head + 1; p < tail; ++p) {
      y[static_cast<std::size_t>(rows_[static_cast<std::size_t>(p)])] -=
          values_[static_cast<std::size_t>(p)] * zj;
    }
  }
  // Backward solve L^T w = z.
  for (Index j = n_ - 1; j >= 0; --j) {
    const Index head = col_ptr_[static_cast<std::size_t>(j)];
    const Index tail = col_ptr_[static_cast<std::size_t>(j) + 1];
    double s = y[static_cast<std::size_t>(j)];
    for (Index p = head + 1; p < tail; ++p) {
      s -= values_[static_cast<std::size_t>(p)] *
           y[static_cast<std::size_t>(rows_[static_cast<std::size_t>(p)])];
    }
    y[static_cast<std::size_t>(j)] = s / values_[static_cast<std::size_t>(head)];
  }

  // Undo permutation; re-expand and re-center in Laplacian mode.
  if (laplacian_mode_) {
    Vec xg(static_cast<std::size_t>(n_));
    for (Index i = 0; i < n_; ++i) {
      xg[static_cast<std::size_t>(order_[static_cast<std::size_t>(i)])] =
          y[static_cast<std::size_t>(i)];
    }
    Index t = 0;
    for (Index i = 0; i < outer_n_; ++i) {
      x[static_cast<std::size_t>(i)] =
          (i == pin_) ? 0.0 : xg[static_cast<std::size_t>(t++)];
    }
    project_out_mean(x);
  } else {
    for (Index i = 0; i < n_; ++i) {
      x[static_cast<std::size_t>(order_[static_cast<std::size_t>(i)])] =
          y[static_cast<std::size_t>(i)];
    }
  }
}

Vec SparseCholesky::solve(std::span<const double> b) const {
  Vec x(static_cast<std::size_t>(outer_n_));
  solve(b, x);
  return x;
}

std::size_t SparseCholesky::memory_bytes() const {
  return rows_.size() * sizeof(Vertex) + values_.size() * sizeof(double) +
         col_ptr_.size() * sizeof(Index) +
         (order_.size() + inverse_order_.size()) * sizeof(Vertex);
}

}  // namespace ssp
