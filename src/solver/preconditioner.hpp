#pragma once

/// \file preconditioner.hpp
/// Preconditioner interface for the PCG solver plus the basic
/// implementations (identity, Jacobi, spanning tree). The Cholesky and AMG
/// preconditioners live with their factorizations in cholesky.hpp/amg.hpp.
///
/// Contract: `apply` computes z ≈ M⁻¹ r for an SPD (or SPSD-with-known-
/// nullspace) operator M. For Laplacian work every implementation keeps the
/// output in the zero-mean subspace.

#include <memory>
#include <span>

#include "la/csr_matrix.hpp"
#include "tree/tree_solver.hpp"
#include "util/types.hpp"

namespace ssp {

class Preconditioner {
 public:
  virtual ~Preconditioner() = default;

  /// z := M⁻¹ r. Sizes must equal size().
  virtual void apply(std::span<const double> r, std::span<double> z) const = 0;

  [[nodiscard]] virtual Index size() const = 0;
};

/// No-op preconditioner: plain conjugate gradients.
class IdentityPreconditioner final : public Preconditioner {
 public:
  explicit IdentityPreconditioner(Index n);
  void apply(std::span<const double> r, std::span<double> z) const override;
  [[nodiscard]] Index size() const override { return n_; }

 private:
  Index n_;
};

/// Diagonal (Jacobi) preconditioner of a given matrix.
class JacobiPreconditioner final : public Preconditioner {
 public:
  explicit JacobiPreconditioner(const CsrMatrix& a);
  void apply(std::span<const double> r, std::span<double> z) const override;
  [[nodiscard]] Index size() const override {
    return static_cast<Index>(inv_diag_.size());
  }

 private:
  Vec inv_diag_;
};

/// Spanning-tree preconditioner: exact solve with the tree Laplacian.
/// The classic support-theory preconditioner ([21], Spielman–Woo); also the
/// inner solver of the densification loop when the tree is a subgraph of
/// the current sparsifier. Output has zero mean.
class TreePreconditioner final : public Preconditioner {
 public:
  /// The spanning tree must outlive the preconditioner.
  explicit TreePreconditioner(const SpanningTree& tree);
  void apply(std::span<const double> r, std::span<double> z) const override;
  [[nodiscard]] Index size() const override { return solver_.num_vertices(); }

 private:
  TreeSolver solver_;
};

}  // namespace ssp
