#include "util/union_find.hpp"

#include <numeric>

#include "util/assert.hpp"

namespace ssp {

UnionFind::UnionFind(Index n) : num_sets_(0) { reset(n); }

void UnionFind::reset(Index n) {
  SSP_REQUIRE(n >= 0, "UnionFind size must be non-negative");
  parent_.resize(static_cast<std::size_t>(n));
  size_.assign(static_cast<std::size_t>(n), 1);
  num_sets_ = n;
  std::iota(parent_.begin(), parent_.end(), Index{0});
}

void UnionFind::check_bounds(Index x) const {
  SSP_REQUIRE(x >= 0 && x < num_elements(), "UnionFind index out of range");
}

Index UnionFind::find(Index x) {
  check_bounds(x);
  while (parent_[static_cast<std::size_t>(x)] != x) {
    auto& p = parent_[static_cast<std::size_t>(x)];
    p = parent_[static_cast<std::size_t>(p)];  // path halving
    x = p;
  }
  return x;
}

bool UnionFind::unite(Index a, Index b) {
  Index ra = find(a);
  Index rb = find(b);
  if (ra == rb) return false;
  if (size_[static_cast<std::size_t>(ra)] < size_[static_cast<std::size_t>(rb)]) {
    std::swap(ra, rb);
  }
  parent_[static_cast<std::size_t>(rb)] = ra;
  size_[static_cast<std::size_t>(ra)] += size_[static_cast<std::size_t>(rb)];
  --num_sets_;
  return true;
}

bool UnionFind::same(Index a, Index b) { return find(a) == find(b); }

Index UnionFind::size_of(Index x) {
  return size_[static_cast<std::size_t>(find(x))];
}

}  // namespace ssp
