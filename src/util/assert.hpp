#pragma once

/// \file assert.hpp
/// Always-on and debug-only assertion macros used across the library.
///
/// Per the project error-handling contract (DESIGN.md §6):
///  * `SSP_REQUIRE`  — precondition checks on public API boundaries; throws
///    `std::invalid_argument` with location info. Always enabled.
///  * `SSP_ASSERT`   — internal invariants on cold paths; throws
///    `ssp::InternalError`. Always enabled.
///  * `SSP_DASSERT`  — internal invariants on hot paths; compiled out unless
///    `SSP_ENABLE_DEBUG_ASSERTS` is defined.

#include <sstream>
#include <stdexcept>
#include <string>

namespace ssp {

/// Thrown when an internal invariant is violated; indicates a library bug,
/// not user error.
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void throw_requirement_failure(const char* expr,
                                                   const char* file, int line,
                                                   const std::string& msg) {
  std::ostringstream os;
  os << "precondition violated: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_assertion_failure(const char* expr,
                                                 const char* file, int line,
                                                 const std::string& msg) {
  std::ostringstream os;
  os << "internal invariant violated: (" << expr << ") at " << file << ':'
     << line;
  if (!msg.empty()) os << " — " << msg;
  throw InternalError(os.str());
}

}  // namespace detail
}  // namespace ssp

#define SSP_REQUIRE(cond, msg)                                         \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::ssp::detail::throw_requirement_failure(#cond, __FILE__,        \
                                               __LINE__, (msg));       \
    }                                                                  \
  } while (false)

#define SSP_ASSERT(cond, msg)                                          \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::ssp::detail::throw_assertion_failure(#cond, __FILE__,          \
                                             __LINE__, (msg));         \
    }                                                                  \
  } while (false)

#ifdef SSP_ENABLE_DEBUG_ASSERTS
#define SSP_DASSERT(cond, msg) SSP_ASSERT(cond, msg)
#else
#define SSP_DASSERT(cond, msg) \
  do {                         \
  } while (false)
#endif
