#pragma once

/// \file union_find.hpp
/// Disjoint-set forest with union by size and path halving.
///
/// Used by Kruskal's spanning tree, the AKPW low-stretch tree's cluster
/// contraction, and connectivity checks.

#include <vector>

#include "util/types.hpp"

namespace ssp {

class UnionFind {
 public:
  /// Creates `n` singleton sets labelled 0..n-1.
  explicit UnionFind(Index n);

  /// Restores `n` singleton sets, reusing the existing storage when the
  /// element count is unchanged (batch loops reset instead of reallocating).
  void reset(Index n);

  /// Representative of the set containing `x` (with path halving).
  [[nodiscard]] Index find(Index x);

  /// Merges the sets containing `a` and `b`.
  /// \returns true when a merge happened (they were in different sets).
  bool unite(Index a, Index b);

  /// True when `a` and `b` are currently in the same set.
  [[nodiscard]] bool same(Index a, Index b);

  /// Number of elements in the set containing `x`.
  [[nodiscard]] Index size_of(Index x);

  /// Current number of disjoint sets.
  [[nodiscard]] Index num_sets() const { return num_sets_; }

  /// Total number of elements.
  [[nodiscard]] Index num_elements() const {
    return static_cast<Index>(parent_.size());
  }

 private:
  void check_bounds(Index x) const;

  std::vector<Index> parent_;
  std::vector<Index> size_;
  Index num_sets_;
};

}  // namespace ssp
