#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "util/assert.hpp"

namespace ssp {

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.min = xs[0];
  s.max = xs[0];
  double sum = 0.0;
  for (double x : xs) {
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
    sum += x;
  }
  s.mean = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (double x : xs) ss += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(ss / static_cast<double>(xs.size()));
  return s;
}

double percentile(std::span<const double> xs, double q) {
  SSP_REQUIRE(!xs.empty(), "percentile of empty sample");
  SSP_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q must be in [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::vector<double> sorted_series(std::span<const double> xs, std::size_t k) {
  SSP_REQUIRE(!xs.empty(), "sorted_series of empty sample");
  SSP_REQUIRE(k >= 2, "sorted_series needs k >= 2");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  std::vector<double> out;
  out.reserve(k);
  const std::size_t n = sorted.size();
  for (std::size_t i = 0; i < k; ++i) {
    const double pos = static_cast<double>(i) *
                       static_cast<double>(n - 1) /
                       static_cast<double>(k - 1);
    out.push_back(sorted[static_cast<std::size_t>(pos)]);
  }
  return out;
}

}  // namespace ssp
