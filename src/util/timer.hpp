#pragma once

/// \file timer.hpp
/// Wall-clock timing used by the densification loop and all benchmark tables.

#include <chrono>

namespace ssp {

/// Monotonic wall-clock stopwatch. Started on construction.
class WallTimer {
 public:
  WallTimer();

  /// Restarts the stopwatch.
  void reset();

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const;

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double milliseconds() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ssp
