#pragma once

/// \file parallel.hpp
/// Deterministic parallel execution for the library's embarrassingly
/// parallel hot loops (probe vectors, JL sketch solves, row-wise SpMV,
/// per-edge accumulations).
///
/// Design rules that make "parallel" compatible with the library's
/// bit-reproducibility contract:
///
///  * **Chunked static decomposition.** `parallel_for_chunks` splits an
///    index range into at most `max_threads` contiguous chunks whose
///    boundaries depend only on the range and the chunk count — never on
///    scheduling. Which worker executes a chunk is irrelevant as long as
///    every output location is owned by exactly one chunk; callers that
///    need a reduction combine per-chunk (or per-stream) partials in index
///    order afterwards.
///  * **One reusable pool.** `global_pool()` lazily spawns
///    `default_threads() - 1` workers once per process and reuses them for
///    every region; there is no per-call thread spawn cost.
///  * **Nested regions run inline.** A parallel region entered from inside
///    a pool worker executes sequentially on that worker (no deadlock, no
///    oversubscription) — e.g. a row-parallel SpMV inside a parallel probe
///    loop.
///  * **Deterministic failure.** If chunk bodies throw, the exception from
///    the lowest-indexed failing chunk is rethrown on the calling thread
///    after all chunks finish.
///
/// Worker count resolution: `default_threads()` honours the `SSP_THREADS`
/// environment variable when it holds a positive integer and falls back to
/// `std::thread::hardware_concurrency()`. Components with a `threads`
/// option (e.g. `SparsifyOptions::threads`) treat 0 as "use
/// `default_threads()`".

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace ssp {

/// Persistent worker pool executing chunked index ranges. Thread-safe for
/// one region at a time (regions are serialized by an internal mutex);
/// nested submissions from worker threads run inline.
class ThreadPool {
 public:
  /// Spawns `workers - 1` background threads (the submitting thread always
  /// participates as worker 0). `workers` must be >= 1.
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int workers() const { return workers_; }

  /// Runs `body(chunk, chunk_begin, chunk_end)` for `n_chunks` contiguous
  /// chunks covering [begin, end), blocking until all complete. Chunk
  /// boundaries are a pure function of (begin, end, n_chunks). Called from
  /// inside a pool worker, the chunks run inline on that worker.
  void run_chunks(Index begin, Index end, int n_chunks,
                  const std::function<void(int, Index, Index)>& body);

  /// True when the calling thread is one of this process's pool workers
  /// (used to force nested regions inline).
  [[nodiscard]] static bool on_worker_thread();

 private:
  /// `worker` indexes the busy-time metrics (`pool.worker.<i>.busy_ns`);
  /// the submitting thread reports as worker 0, spawned threads as 1..N-1.
  void worker_loop(int worker);
  void run_chunks_inline(Index begin, Index end, int n_chunks,
                         const std::function<void(int, Index, Index)>& body);

  struct Region;  // one parallel region's shared state

  const int workers_;
  std::vector<std::thread> threads_;
  std::mutex submit_mutex_;  ///< serializes concurrent regions

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  Region* region_ = nullptr;  ///< active region (guarded by mutex_)
  std::uint64_t epoch_ = 0;   ///< bumped per region so workers re-check
  bool stop_ = false;
};

/// max(1, std::thread::hardware_concurrency()).
[[nodiscard]] int hardware_threads();

/// Process-wide default worker count: `SSP_THREADS` when set to a positive
/// integer, else `hardware_threads()`; can be overridden programmatically.
[[nodiscard]] int default_threads();

/// Overrides `default_threads()` for this process (tools' `--threads`
/// flag, tests). `n` <= 0 restores the environment/hardware default.
void set_default_threads(int n);

/// Resolves a component-level thread request: `requested` > 0 is taken as
/// is, 0 (or negative) selects `default_threads()`.
[[nodiscard]] int resolve_threads(int requested);

/// The process-wide reusable pool, created on first use with
/// `default_threads()` workers. Later `set_default_threads` calls cap how
/// many of its workers a region uses but do not shrink the pool.
[[nodiscard]] ThreadPool& global_pool();

/// Chunked static parallel for over [begin, end): at most
/// `resolve_threads(max_threads)` chunks on the global pool. The chunk
/// decomposition — and therefore which elements share a chunk — depends
/// only on the range and the resolved chunk count.
void parallel_for_chunks(Index begin, Index end, int max_threads,
                         const std::function<void(int, Index, Index)>& body);

/// Element-wise convenience wrapper: `fn(i)` for i in [begin, end), each
/// element owned by exactly one chunk. `fn` must write only to locations
/// owned by `i` for the result to be schedule-independent.
template <typename Fn>
void parallel_for(Index begin, Index end, int max_threads, Fn&& fn) {
  parallel_for_chunks(begin, end, max_threads,
                      [&fn](int /*chunk*/, Index b, Index e) {
                        for (Index i = b; i < e; ++i) fn(i);
                      });
}

}  // namespace ssp
