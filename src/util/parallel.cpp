#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace ssp {

namespace {

/// Set while a thread executes chunks for any ThreadPool, so nested
/// parallel regions detect they are already inside one.
thread_local bool t_on_worker = false;

std::uint64_t busy_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Per-worker busy-time accounting (worker 0 = the submitting thread).
/// Telemetry only — never feeds back into chunk decomposition, so the
/// schedule and results are unchanged by metrics being on.
void add_worker_busy(int worker, std::uint64_t ns) {
  char name[48];
  std::snprintf(name, sizeof(name), "pool.worker.%d.busy_ns", worker);
  obs::counter_add_named(name, ns);
}

std::atomic<int> g_default_override{0};

int env_threads() {
  const char* env = std::getenv("SSP_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v <= 0 || v > 4096) return 0;
  return static_cast<int>(v);
}

}  // namespace

/// Shared state of one in-flight region. Chunk boundaries are fixed up
/// front as a pure function of (begin, end, n_chunks); workers claim chunk
/// *indices* dynamically, which balances load without affecting which data
/// a chunk touches — results stay schedule-independent.
struct ThreadPool::Region {
  Index begin = 0;
  Index end = 0;
  int n_chunks = 0;
  const std::function<void(int, Index, Index)>* body = nullptr;
  std::atomic<int> next_chunk{0};
  std::atomic<int> chunks_left{0};
  std::atomic<int> workers_inside{0};  ///< pool workers currently attached
  std::mutex error_mutex;
  int first_error_chunk = -1;
  std::exception_ptr error;  ///< from the lowest-indexed failing chunk

  void chunk_bounds(int chunk, Index* b, Index* e) const {
    const Index n = end - begin;
    const Index base = n / n_chunks;
    const Index extra = n % n_chunks;
    const Index lo = begin + base * chunk + std::min<Index>(chunk, extra);
    *b = lo;
    *e = lo + base + (chunk < extra ? 1 : 0);
  }

  void run_claimed_chunks() {
    for (;;) {
      const int chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= n_chunks) return;
      Index b = 0;
      Index e = 0;
      chunk_bounds(chunk, &b, &e);
      try {
        (*body)(chunk, b, e);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error_chunk < 0 || chunk < first_error_chunk) {
          first_error_chunk = chunk;
          error = std::current_exception();
        }
      }
      chunks_left.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
};

ThreadPool::ThreadPool(int workers) : workers_(workers) {
  SSP_REQUIRE(workers >= 1, "ThreadPool: need at least one worker");
  threads_.reserve(static_cast<std::size_t>(workers - 1));
  for (int i = 1; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool ThreadPool::on_worker_thread() { return t_on_worker; }

void ThreadPool::worker_loop(int worker) {
  t_on_worker = true;
  std::uint64_t seen_epoch = 0;
  for (;;) {
    Region* region = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] {
        return stop_ || (region_ != nullptr && epoch_ != seen_epoch);
      });
      if (stop_) return;
      seen_epoch = epoch_;
      region = region_;
      // Attach while holding the lock: the submitter cannot observe
      // "all chunks done and nobody inside" and destroy the region
      // between our pointer read and this increment.
      region->workers_inside.fetch_add(1, std::memory_order_relaxed);
    }
    const bool timed = obs::metrics_enabled();
    const std::uint64_t t0 = timed ? busy_now_ns() : 0;
    region->run_claimed_chunks();
    if (timed) add_worker_busy(worker, busy_now_ns() - t0);
    bool region_complete = false;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      const int inside =
          region->workers_inside.fetch_sub(1, std::memory_order_acq_rel) - 1;
      region_complete =
          inside == 0 &&
          region->chunks_left.load(std::memory_order_acquire) == 0;
    }
    if (region_complete) done_.notify_all();
  }
}

void ThreadPool::run_chunks_inline(
    Index begin, Index end, int n_chunks,
    const std::function<void(int, Index, Index)>& body) {
  Region region;
  region.begin = begin;
  region.end = end;
  region.n_chunks = n_chunks;
  region.body = &body;
  region.chunks_left.store(n_chunks, std::memory_order_relaxed);
  // An inline region is still a region: mark the thread so nested
  // parallel calls (e.g. row-parallel SpMV inside a 1-chunk probe loop)
  // run inline too instead of fanning out across the pool — a
  // threads == 1 region must confine all work it spawns to this thread.
  const bool was_worker = t_on_worker;
  t_on_worker = true;
  region.run_claimed_chunks();
  t_on_worker = was_worker;
  if (region.error) std::rethrow_exception(region.error);
}

void ThreadPool::run_chunks(Index begin, Index end, int n_chunks,
                            const std::function<void(int, Index, Index)>& body) {
  if (end <= begin) return;
  SSP_REQUIRE(n_chunks >= 1, "ThreadPool: need at least one chunk");
  n_chunks = static_cast<int>(
      std::min<Index>(n_chunks, end - begin));  // no empty chunks
  // Nested or trivial region: run on the calling thread. The chunk
  // decomposition is unchanged, so results are bit-identical.
  if (n_chunks == 1 || t_on_worker || workers_ == 1) {
    obs::counter_add("pool.inline_regions", 1);
    run_chunks_inline(begin, end, n_chunks, body);
    return;
  }

  const std::lock_guard<std::mutex> serialize(submit_mutex_);
  obs::counter_add("pool.regions", 1);
  obs::counter_add("pool.chunks", static_cast<std::uint64_t>(n_chunks));
  obs::gauge_set("pool.queue_depth", n_chunks);
  const obs::Span region_span("pool.region", "chunks", n_chunks);
  Region region;
  region.begin = begin;
  region.end = end;
  region.n_chunks = n_chunks;
  region.body = &body;
  region.chunks_left.store(n_chunks, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    region_ = &region;
    ++epoch_;
  }
  wake_.notify_all();

  // The submitting thread participates as a worker (worker 0 in the
  // busy-time accounting).
  t_on_worker = true;
  const bool timed = obs::metrics_enabled();
  const std::uint64_t t0 = timed ? busy_now_ns() : 0;
  region.run_claimed_chunks();
  if (timed) add_worker_busy(0, busy_now_ns() - t0);
  t_on_worker = false;

  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] {
      return region.chunks_left.load(std::memory_order_acquire) == 0 &&
             region.workers_inside.load(std::memory_order_acquire) == 0;
    });
    region_ = nullptr;
  }
  obs::gauge_set("pool.queue_depth", 0);
  if (region.error) std::rethrow_exception(region.error);
}

int hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

int default_threads() {
  const int override = g_default_override.load(std::memory_order_relaxed);
  if (override > 0) return override;
  const int env = env_threads();
  return env > 0 ? env : hardware_threads();
}

void set_default_threads(int n) {
  g_default_override.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

int resolve_threads(int requested) {
  return requested > 0 ? requested : default_threads();
}

ThreadPool& global_pool() {
  // Sized once at first use from default_threads(); later
  // set_default_threads() calls change how many chunks a region submits
  // but never grow the pool — tools therefore apply --threads before
  // touching any parallel path.
  static ThreadPool pool(std::max(default_threads(), 1));
  return pool;
}

void parallel_for_chunks(Index begin, Index end, int max_threads,
                         const std::function<void(int, Index, Index)>& body) {
  if (end <= begin) return;
  const int chunks = resolve_threads(max_threads);
  global_pool().run_chunks(begin, end, chunks, body);
}

}  // namespace ssp
