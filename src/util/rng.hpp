#pragma once

/// \file rng.hpp
/// Deterministic pseudo-random number generation.
///
/// Every stochastic component of the library (random start vectors for power
/// iterations, synthetic graph generators, edge sampling baselines) draws
/// from an explicitly seeded `ssp::Rng` so that tests and benchmarks are
/// bit-reproducible across runs. The generator is xoshiro256**, seeded via
/// SplitMix64 as recommended by its authors.

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace ssp {

/// xoshiro256** generator; satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit state words from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit output.
  result_type operator()();

  /// Derives an independent child generator for logical stream
  /// `stream_id`: the child's seed is a SplitMix64 mix of the parent's
  /// current state and the id, so distinct ids give decorrelated streams
  /// and equal (state, id) pairs give identical ones. The parent is NOT
  /// advanced — callers that derive streams repeatedly (e.g. once per
  /// densification round) must advance the parent between derivations.
  ///
  /// This is the primitive behind the library's thread-count-independent
  /// parallelism: each probe/sketch j draws from `split(j)`, so the random
  /// sequence a unit of work consumes depends only on its stream id, never
  /// on which thread executes it or how work is chunked.
  [[nodiscard]] Rng split(std::uint64_t stream_id) const;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform();

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer in the closed range [lo, hi].
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal variate (Box–Muller, cached spare).
  [[nodiscard]] double normal();

  /// Rademacher variate: ±1 with equal probability.
  [[nodiscard]] double rademacher();

  /// Exponential variate with rate `lambda` (> 0).
  [[nodiscard]] double exponential(double lambda);

  /// Returns a vector of `n` Rademacher entries (common power-iteration seed).
  [[nodiscard]] std::vector<double> rademacher_vector(Index n);

  /// Returns a vector of `n` standard normal entries.
  [[nodiscard]] std::vector<double> normal_vector(Index n);

  /// Fisher–Yates shuffle of an index container.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace ssp
