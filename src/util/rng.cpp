#include "util/rng.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace ssp {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // A pathological all-zero state cannot occur with SplitMix64 seeding of
  // four consecutive outputs, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x1ULL;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::split(std::uint64_t stream_id) const {
  // Fold the four state words into one 64-bit digest, perturb it with the
  // stream id through an extra SplitMix64 round, and let the Rng(seed)
  // constructor expand the result back into four words. Rotations keep the
  // fold from cancelling symmetric states.
  std::uint64_t digest = s_[0];
  digest ^= rotl(s_[1], 13);
  digest ^= rotl(s_[2], 29);
  digest ^= rotl(s_[3], 43);
  std::uint64_t sm = digest;
  std::uint64_t seed = splitmix64(sm);
  sm = seed ^ (stream_id + 0x9e3779b97f4a7c15ULL);
  seed = splitmix64(sm);
  return Rng(seed);
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  SSP_REQUIRE(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  SSP_REQUIRE(lo <= hi, "uniform_int(lo, hi) requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw = 0;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

double Rng::rademacher() { return ((*this)() & 1ULL) != 0 ? 1.0 : -1.0; }

double Rng::exponential(double lambda) {
  SSP_REQUIRE(lambda > 0.0, "exponential rate must be positive");
  double u = 0.0;
  do {
    u = uniform();
  } while (u == 0.0);
  return -std::log(u) / lambda;
}

std::vector<double> Rng::rademacher_vector(Index n) {
  SSP_REQUIRE(n >= 0, "vector length must be non-negative");
  std::vector<double> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rademacher();
  return v;
}

std::vector<double> Rng::normal_vector(Index n) {
  SSP_REQUIRE(n >= 0, "vector length must be non-negative");
  std::vector<double> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = normal();
  return v;
}

}  // namespace ssp
