#pragma once

/// \file types.hpp
/// Fundamental index types shared by every subsystem.

#include <cstdint>

namespace ssp {

/// Vertex identifier. Graphs up to ~2·10^9 vertices; all benchmark workloads
/// fit comfortably in 32 bits, which halves adjacency storage.
using Vertex = std::int32_t;

/// Edge identifier (index into a graph's edge list). 64-bit because edge
/// counts of dense proxies (e.g. 80-NN graphs) can exceed 2^31 when scaled.
using EdgeId = std::int64_t;

/// Generic array index / size type used for CSR offsets and vector sizes.
using Index = std::int64_t;

/// Sentinel for "no vertex" (e.g. the root's parent in a rooted tree).
inline constexpr Vertex kInvalidVertex = -1;

/// Sentinel for "no edge".
inline constexpr EdgeId kInvalidEdge = -1;

}  // namespace ssp
