#pragma once

/// \file stats.hpp
/// Small descriptive-statistics helpers used by benchmark tables and the
/// Fig. 2 heat-distribution reporting.

#include <span>
#include <vector>

namespace ssp {

/// Summary statistics of a sample.
struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< population standard deviation
  std::size_t count = 0;
};

/// Computes min/max/mean/stddev of `xs`. Empty input yields a zero Summary.
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// q-th percentile (q in [0,1]) by linear interpolation on the sorted copy.
/// Throws std::invalid_argument for empty input or q outside [0,1].
[[nodiscard]] double percentile(std::span<const double> xs, double q);

/// Returns `k` evenly spaced samples of the *descending*-sorted input,
/// including the first (max) and last (min) elements — the series used to
/// plot Fig. 2-style sorted heat curves compactly. `k >= 2`.
[[nodiscard]] std::vector<double> sorted_series(std::span<const double> xs,
                                                std::size_t k);

}  // namespace ssp
