#pragma once

/// \file quality.hpp
/// Condition-number quality estimation for an arbitrary sparsifier graph —
/// λ_max via generalized power iterations with a tree-PCG solver for L_P,
/// λ_min via the paper's §3.6.2 node-coloring (degree-ratio) bound. Used by
/// the partition-parallel layer's global quality stage and the benches that
/// compare sparsifiers produced by different pipelines (whole-graph vs
/// partitioned, similarity-aware vs Spielman–Srivastava).

#include <cstdint>

#include "graph/graph.hpp"
#include "util/types.hpp"

namespace ssp {

struct SparsifierQuality {
  double lambda_min = 0.0;  ///< node-coloring estimate of λ_min(L_P⁺ L_G)
  double lambda_max = 0.0;  ///< power-iteration estimate of λ_max(L_P⁺ L_G)
  double sigma2 = 0.0;      ///< λ_max / λ_min — relative condition number κ
};

struct QualityOptions {
  Index power_iterations = 20;     ///< generalized power iterations for λ_max
  double solver_tolerance = 1e-8;  ///< relative tolerance of the L_P solves
  std::uint64_t seed = 42;         ///< start-vector seed (deterministic)
};

/// Estimates κ(L_G, L_P) for a sparsifier `p` of `g` on the same vertex
/// set. Both graphs must be finalized and `p` connected (its max-weight
/// spanning tree preconditions the inner PCG solves). Handles arbitrary
/// (re-weighted) sparsifiers: λ_min may drop below 1, guarded only at 0.
[[nodiscard]] SparsifierQuality estimate_sparsifier_quality(
    const Graph& g, const Graph& p, const QualityOptions& opts = {});

}  // namespace ssp
