#pragma once

/// \file hierarchical_sparsifier.hpp
/// Out-of-core hierarchical sparsification — the scale layer for graphs
/// that do not fit the resident-memory budget as one heap `Graph`. Where
/// `PartitionedSparsifier` materializes every block subgraph up front,
/// this driver consumes a `GraphView` (typically an mmap'd `.sspb`,
/// storage/mapped_graph.hpp) and keeps at most **one** leaf subgraph on
/// the heap at a time:
///
///  1. **Order**: a deterministic BFS over the view (roots in ascending
///     vertex id, neighbors in CSR order) yields a locality-preserving
///     vertex order, so contiguous ranges of it have few cut edges.
///  2. **Split**: the root range [0, n) is split recursively — each range
///     whose estimated heap-subgraph footprint exceeds the budget is cut
///     at its degree-sum midpoint — producing a shallow binary hierarchy
///     whose leaves all fit. Estimation uses prefix degree sums only;
///     nothing is extracted to decide the shape.
///  3. **Leaves, one at a time**: each leaf's induced subgraph is
///     extracted from the view (graph/subgraph.hpp, CSR row scans), its
///     connected components are sparsified exactly like a
///     `PartitionedSparsifier` block (tree components verbatim, one
///     single-threaded engine per component fanned out over the pool),
///     and the heap subgraph is dropped before the next leaf starts. A
///     release hook (`MappedGraph::release_pages`) runs between leaves so
///     the page cache working set stays bounded too.
///  4. **Cut edges are kept verbatim** (ascending host edge id) — the
///     hierarchy is shallow by construction, so the cut is small relative
///     to the leaf interiors, and keeping it preserves connectivity
///     without a second out-of-core pass.
///
/// Semantics:
///  * **Whole-graph parity**: when the root range fits the budget and the
///    graph is connected, the driver materializes it once and runs the
///    whole-graph engine with `opts.block` verbatim — the result edge
///    list is bit-identical to `Sparsifier::run()` on the heap graph
///    (the k = 1 contract of the out-of-core smoke test).
///  * **Determinism**: the result is a pure function of (graph,
///    options-without-threads). Leaf ranges depend only on CSR adjacency
///    (identical between heap and mmap producers of the same logical
///    graph); component engines draw seeds
///    `Rng(block.seed).split(leaf).split(component)`. `threads` changes
///    wall time only.
///  * **Connectivity**: every engine keeps a spanning tree of its
///    component and every cut edge survives, so the output connects
///    exactly what the input connects.
///  * **Memory**: the budget bounds the materialized leaf subgraph, not
///    the driver's O(n) bookkeeping (BFS order, prefix degree sums, leaf
///    assignment — a few machine words per vertex) nor the cut edge list.

#include <cstdint>
#include <functional>
#include <vector>

#include "core/sparsifier.hpp"
#include "graph/graph_view.hpp"
#include "scale/partitioned_sparsifier.hpp"

namespace ssp::storage {
class MappedGraph;
}  // namespace ssp::storage

namespace ssp {

struct HierarchicalOptions {
  /// Resident-memory budget in bytes for one materialized leaf subgraph
  /// (edge list + CSR arrays + id maps, conservatively estimated). The
  /// whole graph fitting the budget triggers the whole-graph fast path.
  std::uint64_t memory_budget_bytes = 256ull << 20;
  /// Engine options for the leaf passes; `block.seed` roots every derived
  /// stream. On the whole-graph fast path `block` is used verbatim
  /// (threads included); inside leaves engines run single-threaded.
  SparsifyOptions block;
  /// Concurrent component engines within one leaf (0 =
  /// `ssp::default_threads()`). Changes wall time only, never the result.
  int threads = 0;
  /// Recursion guard: a range at this depth becomes a leaf even when it
  /// exceeds the budget (as does any range of one vertex).
  Index max_depth = 48;

  /// Throws std::invalid_argument on the first violated constraint
  /// (including `block.validate()`).
  void validate() const;

  HierarchicalOptions& with_memory_budget_bytes(std::uint64_t bytes);
  HierarchicalOptions& with_block_options(SparsifyOptions opts);
  HierarchicalOptions& with_threads(int n);
  HierarchicalOptions& with_max_depth(Index depth);
};

struct HierarchicalResult {
  /// Host edge ids of the sparsifier: leaf selections in leaf order (each
  /// engine's backbone-first order preserved), then every cut edge in
  /// ascending host edge id.
  std::vector<EdgeId> edges;
  Index leaves = 0;        ///< leaf count of the split hierarchy
  Index depth = 0;         ///< deepest leaf (0 = unsplit root)
  EdgeId cut_edges = 0;    ///< inter-leaf edges (all kept)
  bool whole_graph = false;  ///< whole-graph fast path taken
  /// Per-leaf telemetry in leaf order (`BlockStats::block` is the leaf
  /// id); empty on the whole-graph fast path except for leaf 0.
  std::vector<BlockStats> leaf_stats;
  double total_seconds = 0.0;

  [[nodiscard]] EdgeId num_edges() const {
    return static_cast<EdgeId>(edges.size());
  }
};

/// Out-of-core hierarchical sparsification driver. Bind to a finalized
/// view (which must outlive the driver), configure, call `run()` once.
/// Not copyable; API-level single-threaded like the engine.
class HierarchicalSparsifier {
 public:
  explicit HierarchicalSparsifier(GraphView g, HierarchicalOptions opts = {});

  HierarchicalSparsifier(const HierarchicalSparsifier&) = delete;
  HierarchicalSparsifier& operator=(const HierarchicalSparsifier&) = delete;

  /// Called after each processed leaf (and after the ordering pass) —
  /// wire `MappedGraph::release_pages` here to drop the page-cache
  /// working set between leaves. Must outlive the driver or be cleared.
  void set_release_hook(std::function<void()> hook) {
    release_hook_ = std::move(hook);
  }

  /// Attaches (or detaches, with nullptr) the telemetry observer:
  /// `on_block` fires once per leaf in leaf order. Must outlive the
  /// driver or be detached first.
  void set_observer(ScaleObserver* observer) { observer_ = observer; }

  /// Runs ordering, splitting, and every leaf to completion. Idempotent:
  /// subsequent calls return the cached result.
  const HierarchicalResult& run();

  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] const HierarchicalResult& result() const { return result_; }
  [[nodiscard]] const HierarchicalOptions& options() const { return opts_; }

  /// Moves the result out of a finished driver without copying the edge
  /// list; the driver is spent afterwards.
  [[nodiscard]] HierarchicalResult take_result() {
    return std::move(result_);
  }

  /// Conservative heap footprint estimate (bytes) of materializing a
  /// subgraph with `vertices` vertices and `directed_entries` CSR entries
  /// (= twice its edge count). Exposed so tools and benches can report
  /// the same number the splitter compares against the budget.
  [[nodiscard]] static std::uint64_t estimate_subgraph_bytes(
      Vertex vertices, std::uint64_t directed_entries);

 private:
  void release() const {
    if (release_hook_) release_hook_();
  }

  GraphView g_;
  HierarchicalOptions opts_;
  std::function<void()> release_hook_;
  ScaleObserver* observer_ = nullptr;
  HierarchicalResult result_;
  bool done_ = false;
};

/// One-shot convenience wrapper over a view.
[[nodiscard]] HierarchicalResult hierarchical_sparsify(
    GraphView g, const HierarchicalOptions& opts = {});

/// One-shot wrapper over an mmap'd graph with the release hook wired to
/// `g.release_pages()` — the out-of-core entry point of ssp_sparsify and
/// bench_outofcore.
[[nodiscard]] HierarchicalResult hierarchical_sparsify(
    const storage::MappedGraph& g, const HierarchicalOptions& opts = {});

}  // namespace ssp
