#include "scale/quality.hpp"

#include <algorithm>

#include "core/eigen_estimate.hpp"
#include "eigen/operators.hpp"
#include "graph/laplacian.hpp"
#include "solver/preconditioner.hpp"
#include "tree/kruskal.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace ssp {

SparsifierQuality estimate_sparsifier_quality(const Graph& g, const Graph& p,
                                              const QualityOptions& opts) {
  SSP_REQUIRE(g.finalized() && p.finalized(),
              "estimate_sparsifier_quality: graphs must be finalized");
  SSP_REQUIRE(g.num_vertices() == p.num_vertices(),
              "estimate_sparsifier_quality: vertex sets must match");
  SSP_REQUIRE(opts.power_iterations >= 1,
              "estimate_sparsifier_quality: need >= 1 power iteration");

  const CsrMatrix lg = laplacian(g);
  const CsrMatrix lp = laplacian(p);
  const SpanningTree ptree = max_weight_spanning_tree(p);
  const TreePreconditioner precond(ptree);
  const LinOp solve_p =
      make_pcg_op(lp, precond,
                  {.max_iterations = 600,
                   .rel_tolerance = opts.solver_tolerance,
                   .project_constants = true});
  Rng rng(opts.seed);
  SparsifierQuality q;
  q.lambda_max =
      estimate_lambda_max_power(lg, solve_p, rng, opts.power_iterations);
  q.lambda_min = estimate_lambda_min_node_coloring(g, p);
  // Re-weighted sparsifiers can push λ_min below 1; guard only at 0.
  q.sigma2 = q.lambda_max / std::max(q.lambda_min, 1e-12);
  return q;
}

}  // namespace ssp
