#pragma once

/// \file component_tasks.hpp
/// Internal to the scale layer (src/scale/): the shared per-component
/// engine machinery of `PartitionedSparsifier` and
/// `HierarchicalSparsifier`. Both drivers decompose their work units
/// (partition blocks, hierarchy leaves, the cut graph) into connected
/// components, run one single-threaded engine per component fanned out
/// over the global `ThreadPool`, and fold the component outcomes into a
/// `BlockStats`. Determinism lives here: component c of stream s draws
/// its seed from `parent.split(s).split(c)`, tasks own their output
/// slots, and selection order is a pure function of the inputs — never
/// of the executing thread.

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/sparsifier.hpp"
#include "graph/subgraph.hpp"
#include "scale/partitioned_sparsifier.hpp"
#include "util/rng.hpp"

namespace ssp::scale_detail {

/// Sums engine stage wall times into a caller-owned array (one engine per
/// task, so no synchronization is needed).
class StageSecondsAccumulator final : public StageObserver {
 public:
  explicit StageSecondsAccumulator(std::array<double, kNumStageKinds>* acc)
      : acc_(acc) {}
  void on_stage(StageKind stage, double seconds) override {
    (*acc_)[static_cast<int>(stage)] += seconds;
  }

 private:
  std::array<double, kNumStageKinds>* acc_;
};

/// One unit of engine work: a connected component of a work unit (block,
/// leaf, or cut graph), with its edge map into host edge ids and derived
/// seed. Tasks are movable (they live in a vector), so the working graph
/// and edge map are resolved through accessors instead of raw
/// self-pointers: `parent` points at stable storage (the caller's
/// subgraph), `owned` holds a per-component extraction when the parent
/// subgraph is disconnected.
struct ComponentTask {
  Index block = 0;  ///< work-unit id (block/leaf), or kCutBlock
  const Subgraph* parent = nullptr;  ///< caller's subgraph (stable)
  std::optional<Subgraph> owned;     ///< per-component extraction, if any
  std::vector<EdgeId> composed_map;  ///< component → host ids, if owned
  const SparsifyOptions* base_opts = nullptr;
  std::uint64_t seed = 0;
  // Outputs (each task writes only its own slots).
  std::vector<EdgeId> selected;  ///< host edge ids kept
  double sigma2 = 0.0;
  bool reached = true;
  bool is_tree = false;
  double seconds = 0.0;
  std::array<double, kNumStageKinds> stage_seconds{};

  [[nodiscard]] const Graph& graph() const {
    return owned.has_value() ? owned->graph : parent->graph;
  }
  [[nodiscard]] const std::vector<EdgeId>& edge_map() const {
    return owned.has_value() ? composed_map : parent->edge_to_global;
  }
};

/// Appends one task per connected component of `sub` (a block, leaf, or
/// the cut graph). Component c draws its seed from
/// `parent.split(stream_id).split(c)`; single-component subgraphs
/// reference `sub` directly instead of re-extracting. `sub` and
/// `base_opts` must stay alive and unmoved until the tasks have run.
void make_tasks(const Subgraph& sub, Index block, std::uint64_t stream_id,
                const Rng& parent, const SparsifyOptions& base_opts,
                std::vector<ComponentTask>& tasks);

/// Executes `tasks[first, last)` on the global pool; each task owns its
/// output slots, so the result is independent of the thread count. Tree
/// components (κ = 1) are kept verbatim without paying for an engine;
/// all others run a single-threaded engine with the task's seed.
void run_tasks(std::vector<ComponentTask>& tasks, std::size_t first,
               std::size_t last, int threads);

/// Folds the tasks carrying `block` into that work unit's BlockStats.
[[nodiscard]] BlockStats fold_stats(Index block, const Subgraph& sub,
                                    const std::vector<ComponentTask>& tasks);

}  // namespace ssp::scale_detail
