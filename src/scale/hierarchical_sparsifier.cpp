#include "scale/hierarchical_sparsifier.hpp"

#include <algorithm>
#include <utility>

#include "graph/connectivity.hpp"
#include "graph/subgraph.hpp"
#include "scale/component_tasks.hpp"
#include "storage/mapped_graph.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace ssp {

namespace {

/// A contiguous range [lo, hi) of the BFS order that fits the budget (or
/// could not be split further).
struct LeafRange {
  std::size_t lo = 0;
  std::size_t hi = 0;
  Index depth = 0;
};

/// Splits [lo, hi) at its degree-sum midpoint until every range fits the
/// budget (or hits the single-vertex / max-depth floor), appending leaves
/// left to right. `prefix[i]` is the degree sum of order[0, i), so the
/// shape of the hierarchy is a pure function of the CSR adjacency —
/// identical for the heap and mmap producers of the same logical graph.
void split_range(const std::vector<std::uint64_t>& prefix, std::size_t lo,
                 std::size_t hi, Index depth, std::uint64_t budget,
                 Index max_depth, std::vector<LeafRange>& leaves) {
  const auto vertices = static_cast<Vertex>(hi - lo);
  const std::uint64_t dsum = prefix[hi] - prefix[lo];
  if (hi - lo <= 1 || depth >= max_depth ||
      HierarchicalSparsifier::estimate_subgraph_bytes(vertices, dsum) <=
          budget) {
    leaves.push_back({lo, hi, depth});
    return;
  }
  // First index whose prefix reaches the degree-sum midpoint, clamped so
  // both halves are non-empty (a hub vertex heavier than half the range
  // still splits off its neighbors).
  const std::uint64_t target = prefix[lo] + dsum / 2;
  const auto it = std::lower_bound(prefix.begin() + static_cast<std::ptrdiff_t>(lo) + 1,
                                   prefix.begin() + static_cast<std::ptrdiff_t>(hi), target);
  const auto mid = std::clamp(
      static_cast<std::size_t>(it - prefix.begin()), lo + 1, hi - 1);
  split_range(prefix, lo, mid, depth + 1, budget, max_depth, leaves);
  split_range(prefix, mid, hi, depth + 1, budget, max_depth, leaves);
}

}  // namespace

// ---- HierarchicalOptions ---------------------------------------------------

void HierarchicalOptions::validate() const {
  SSP_REQUIRE(memory_budget_bytes >= 1,
              "HierarchicalOptions: memory budget must be >= 1 byte");
  SSP_REQUIRE(threads >= 0, "HierarchicalOptions: threads must be >= 0");
  SSP_REQUIRE(max_depth >= 1, "HierarchicalOptions: max_depth must be >= 1");
  block.validate();
}

HierarchicalOptions& HierarchicalOptions::with_memory_budget_bytes(
    std::uint64_t bytes) {
  SSP_REQUIRE(bytes >= 1,
              "HierarchicalOptions: memory budget must be >= 1 byte");
  memory_budget_bytes = bytes;
  return *this;
}

HierarchicalOptions& HierarchicalOptions::with_block_options(
    SparsifyOptions opts) {
  opts.validate();
  block = std::move(opts);
  return *this;
}

HierarchicalOptions& HierarchicalOptions::with_threads(int n) {
  SSP_REQUIRE(n >= 0, "HierarchicalOptions: threads must be >= 0");
  threads = n;
  return *this;
}

HierarchicalOptions& HierarchicalOptions::with_max_depth(Index depth) {
  SSP_REQUIRE(depth >= 1, "HierarchicalOptions: max_depth must be >= 1");
  max_depth = depth;
  return *this;
}

// ---- HierarchicalSparsifier ------------------------------------------------

std::uint64_t HierarchicalSparsifier::estimate_subgraph_bytes(
    Vertex vertices, std::uint64_t directed_entries) {
  // Per directed CSR entry of a finalized heap subgraph: adj_nbr (4) +
  // adj_eid (8) + adj_w (8), plus half an AoS Edge (24 / 2) and half an
  // edge_to_global slot (8 / 2) = 36; per vertex: adj_ptr (8) +
  // weighted_degree (8) + local_to_global (4) + extraction scratch (4)
  // = 24. Rounded up to 40 / 32 — overestimating splits one level too
  // deep, underestimating busts the budget, so round up.
  return 40 * directed_entries + 32 * static_cast<std::uint64_t>(vertices);
}

HierarchicalSparsifier::HierarchicalSparsifier(GraphView g,
                                               HierarchicalOptions opts)
    : g_(g), opts_(std::move(opts)) {
  SSP_REQUIRE(g_.num_vertices() >= 1,
              "HierarchicalSparsifier: graph must be non-empty");
  opts_.validate();
}

const HierarchicalResult& HierarchicalSparsifier::run() {
  if (done_) return result_;
  const WallTimer total;
  const Vertex n = g_.num_vertices();
  const EdgeId m = g_.num_edges();

  // Pass 1: deterministic BFS order (roots ascending, neighbors in CSR
  // order) + prefix degree sums. The queue doubles as the order array.
  std::vector<Vertex> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  std::size_t head = 0;
  Index roots = 0;
  for (Vertex r = 0; r < n; ++r) {
    if (seen[static_cast<std::size_t>(r)] != 0) continue;
    ++roots;
    seen[static_cast<std::size_t>(r)] = 1;
    order.push_back(r);
    while (head < order.size()) {
      const Vertex u = order[head++];
      for (const auto& item : g_.neighbors(u)) {
        if (seen[static_cast<std::size_t>(item.neighbor)] == 0) {
          seen[static_cast<std::size_t>(item.neighbor)] = 1;
          order.push_back(item.neighbor);
        }
      }
    }
  }
  const bool connected = roots == 1;
  std::vector<std::uint64_t> prefix(static_cast<std::size_t>(n) + 1, 0);
  for (std::size_t i = 0; i < order.size(); ++i) {
    prefix[i + 1] =
        prefix[i] + static_cast<std::uint64_t>(g_.degree(order[i]));
  }
  release();

  // Pass 2: split into leaves.
  std::vector<LeafRange> leaves;
  split_range(prefix, 0, static_cast<std::size_t>(n), 0,
              opts_.memory_budget_bytes, opts_.max_depth, leaves);
  result_.leaves = static_cast<Index>(leaves.size());
  for (const LeafRange& leaf : leaves) {
    result_.depth = std::max(result_.depth, leaf.depth);
  }

  // Whole-graph fast path: one leaf + connected ⇒ materialize once and
  // run the engine with opts_.block verbatim, so the edge list is
  // bit-identical to Sparsifier::run() on the heap graph.
  if (leaves.size() == 1 && connected) {
    const WallTimer timer;
    BlockStats stats;
    stats.block = 0;
    stats.vertices = n;
    stats.edges = m;
    stats.components = 1;
    const Graph heap = g_.materialize();
    release();
    Sparsifier engine(heap, opts_.block);
    scale_detail::StageSecondsAccumulator acc(&stats.stage_seconds);
    engine.set_observer(&acc);
    engine.run();
    SparsifyResult r = engine.take_result();
    stats.kept_edges = static_cast<EdgeId>(r.edges.size());
    stats.sigma2_estimate = r.sigma2_estimate;
    stats.reached_target = r.reached_target;
    stats.seconds = timer.seconds();
    result_.edges = std::move(r.edges);
    result_.whole_graph = true;
    result_.leaf_stats.push_back(stats);
    if (observer_ != nullptr) observer_->on_block(stats);
    result_.total_seconds = total.seconds();
    done_ = true;
    return result_;
  }

  // Pass 3: leaf assignment + one sequential scan over the edge list for
  // the cut (ascending host edge id by construction).
  std::vector<Index> leaf_of(static_cast<std::size_t>(n), 0);
  for (std::size_t l = 0; l < leaves.size(); ++l) {
    for (std::size_t i = leaves[l].lo; i < leaves[l].hi; ++i) {
      leaf_of[static_cast<std::size_t>(order[i])] = static_cast<Index>(l);
    }
  }
  std::vector<EdgeId> cut;
  for (EdgeId e = 0; e < m; ++e) {
    const Edge edge = g_.edge(e);
    if (leaf_of[static_cast<std::size_t>(edge.u)] !=
        leaf_of[static_cast<std::size_t>(edge.v)]) {
      cut.push_back(e);
    }
  }
  release();

  // Pass 4: leaves one at a time — extract, sparsify per component,
  // drop the heap subgraph and the mapped pages before the next leaf.
  const Rng parent(opts_.block.seed);
  for (std::size_t l = 0; l < leaves.size(); ++l) {
    std::vector<Vertex> members(
        order.begin() + static_cast<std::ptrdiff_t>(leaves[l].lo),
        order.begin() + static_cast<std::ptrdiff_t>(leaves[l].hi));
    // Ascending host id, like partition_subgraphs blocks, so local ids
    // don't depend on BFS tie-breaking inside the range.
    std::sort(members.begin(), members.end());
    {
      const Subgraph sub = induced_subgraph(g_, members);
      std::vector<scale_detail::ComponentTask> tasks;
      scale_detail::make_tasks(sub, static_cast<Index>(l),
                               static_cast<std::uint64_t>(l), parent,
                               opts_.block, tasks);
      scale_detail::run_tasks(tasks, 0, tasks.size(), opts_.threads);
      for (const scale_detail::ComponentTask& task : tasks) {
        result_.edges.insert(result_.edges.end(), task.selected.begin(),
                             task.selected.end());
      }
      result_.leaf_stats.push_back(
          scale_detail::fold_stats(static_cast<Index>(l), sub, tasks));
      if (observer_ != nullptr) {
        observer_->on_block(result_.leaf_stats.back());
      }
    }
    release();
  }

  // Pass 5: stitch — every cut edge survives, so the output connects
  // exactly what the input connects (each component of each leaf keeps a
  // spanning tree; cut edges restore every inter-leaf link).
  result_.edges.insert(result_.edges.end(), cut.begin(), cut.end());
  result_.cut_edges = static_cast<EdgeId>(cut.size());
  result_.total_seconds = total.seconds();
  done_ = true;
  return result_;
}

HierarchicalResult hierarchical_sparsify(GraphView g,
                                         const HierarchicalOptions& opts) {
  HierarchicalSparsifier driver(g, opts);
  driver.run();
  return driver.take_result();
}

HierarchicalResult hierarchical_sparsify(const storage::MappedGraph& g,
                                         const HierarchicalOptions& opts) {
  HierarchicalSparsifier driver(g.view(), opts);
  driver.set_release_hook([&g] { g.release_pages(); });
  driver.run();
  return driver.take_result();
}

}  // namespace ssp
