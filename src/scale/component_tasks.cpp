#include "scale/component_tasks.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "graph/connectivity.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace ssp::scale_detail {

namespace {

/// Runs one task to completion: verbatim keep for trees (κ = 1), a
/// single-threaded engine otherwise. Pure function of the task inputs —
/// never of the executing thread.
void run_task(ComponentTask& task) {
  // Live span on the executing worker thread: each component shows up on
  // its real timeline track in the trace, labeled by host block.
  const obs::Span span("scale.component", "block", task.block);
  const WallTimer timer;
  const Graph& sg = task.graph();
  const std::vector<EdgeId>& emap = task.edge_map();
  if (sg.num_edges() == static_cast<EdgeId>(sg.num_vertices()) - 1) {
    task.selected.assign(emap.begin(), emap.end());
    task.sigma2 = 1.0;
    task.reached = true;
    task.is_tree = true;
  } else {
    SparsifyOptions eopts = *task.base_opts;
    eopts.seed = task.seed;
    eopts.threads = 1;  // concurrency lives in the outer fan-out
    StageSecondsAccumulator acc(&task.stage_seconds);
    Sparsifier engine(sg, eopts);
    engine.set_observer(&acc);
    engine.run();
    const SparsifyResult& r = engine.result();
    task.selected.reserve(r.edges.size());
    for (const EdgeId local : r.edges) {
      task.selected.push_back(emap[static_cast<std::size_t>(local)]);
    }
    task.sigma2 = r.sigma2_estimate;
    task.reached = r.reached_target;
  }
  task.seconds = timer.seconds();
}

}  // namespace

void make_tasks(const Subgraph& sub, Index block, std::uint64_t stream_id,
                const Rng& parent, const SparsifyOptions& base_opts,
                std::vector<ComponentTask>& tasks) {
  if (sub.graph.num_vertices() == 0) return;
  const Rng unit_rng = parent.split(stream_id);
  const ComponentLabels comps = connected_components(sub.graph);
  if (comps.num_components == 1) {
    ComponentTask task;
    task.block = block;
    task.parent = &sub;
    task.base_opts = &base_opts;
    task.seed = unit_rng.split(0)();
    tasks.push_back(std::move(task));
    return;
  }
  std::vector<std::vector<Vertex>> members(
      static_cast<std::size_t>(comps.num_components));
  for (Vertex v = 0; v < sub.graph.num_vertices(); ++v) {
    members[static_cast<std::size_t>(comps.label[static_cast<std::size_t>(v)])]
        .push_back(v);
  }
  for (Vertex c = 0; c < comps.num_components; ++c) {
    ComponentTask task;
    task.block = block;
    task.parent = &sub;
    task.owned =
        induced_subgraph(sub.graph, members[static_cast<std::size_t>(c)]);
    // Compose the component→unit and unit→host edge maps.
    task.composed_map.reserve(task.owned->edge_to_global.size());
    for (const EdgeId unit_local : task.owned->edge_to_global) {
      task.composed_map.push_back(
          sub.edge_to_global[static_cast<std::size_t>(unit_local)]);
    }
    task.base_opts = &base_opts;
    task.seed = unit_rng.split(static_cast<std::uint64_t>(c))();
    tasks.push_back(std::move(task));
  }
}

void run_tasks(std::vector<ComponentTask>& tasks, std::size_t first,
               std::size_t last, int threads) {
  parallel_for(static_cast<Index>(first), static_cast<Index>(last), threads,
               [&tasks](Index i) {
                 run_task(tasks[static_cast<std::size_t>(i)]);
               });
}

BlockStats fold_stats(Index block, const Subgraph& sub,
                      const std::vector<ComponentTask>& tasks) {
  BlockStats stats;
  stats.block = block;
  stats.vertices = sub.graph.num_vertices();
  stats.edges = sub.graph.num_edges();
  for (const ComponentTask& task : tasks) {
    if (task.block != block) continue;
    ++stats.components;
    if (task.is_tree) ++stats.tree_components;
    stats.kept_edges += static_cast<EdgeId>(task.selected.size());
    stats.sigma2_estimate = std::max(stats.sigma2_estimate, task.sigma2);
    stats.reached_target = stats.reached_target && task.reached;
    stats.seconds += task.seconds;
    for (int s = 0; s < kNumStageKinds; ++s) {
      stats.stage_seconds[static_cast<std::size_t>(s)] +=
          task.stage_seconds[static_cast<std::size_t>(s)];
    }
  }
  // Per-block per-stage seconds go into the registry under a per-block
  // label. Blocks fold concurrently-computed task timings only here, on
  // the driving thread after the run_tasks barrier, and the registry is
  // lock-free besides — no shared mutable struct to race on.
  if (obs::metrics_enabled()) {
    static constexpr const char* kStageName[kNumStageKinds] = {
        "backbone",  "solver-setup", "spectral-estimate",
        "embedding", "filtering",    "final-estimate"};
    char name[64];
    for (int s = 0; s < kNumStageKinds; ++s) {
      const double sec = stats.stage_seconds[static_cast<std::size_t>(s)];
      if (sec <= 0.0) continue;
      std::snprintf(name, sizeof(name), "scale.block.%lld.stage.%s.ns",
                    static_cast<long long>(block), kStageName[s]);
      obs::counter_add_named(name, static_cast<std::uint64_t>(sec * 1e9));
    }
    std::snprintf(name, sizeof(name), "scale.block.%lld.components",
                  static_cast<long long>(block));
    obs::counter_add_named(name,
                           static_cast<std::uint64_t>(stats.components));
  }
  return stats;
}

}  // namespace ssp::scale_detail
