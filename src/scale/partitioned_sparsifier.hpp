#pragma once

/// \file partitioned_sparsifier.hpp
/// Partition-parallel sparsification — the scale layer that composes the
/// existing ingredients (recursive spectral bisection, the staged
/// `ssp::Sparsifier` engine, the deterministic thread pool, and
/// `Rng::split` stream derivation) into a block-wise pipeline for graphs
/// larger than one engine invocation handles comfortably:
///
///  1. **Partition** the input into k blocks via recursive bisection (or a
///     user-supplied per-vertex assignment).
///  2. **Extract** the induced block subgraphs and the cut graph (cut
///     edges + their boundary vertices) with local ↔ global id maps
///     (graph/subgraph.hpp), in one pass.
///  3. **Sparsify blocks** concurrently: one engine per connected
///     component of each block, fanned out over the global ThreadPool.
///     Every component draws from its own `Rng::split`-derived stream, so
///     the result is bit-identical for any thread count. Components that
///     are already trees are kept verbatim (their κ is 1) without paying
///     for an engine.
///  4. **Sparsify the cut** so inter-block spectral structure survives,
///     per `CutPolicy`: keep every cut edge, filter them with a dedicated
///     engine pass over the cut graph, or keep one heaviest representative
///     per adjacent block pair (quotient).
///  5. **Stitch** block selections and surviving cut edges into one global
///     edge list (block order, then cut), repair connectivity if the cut
///     policy dropped a bridge, and optionally estimate global quality /
///     apply the scalar rescale stage (core/rescale.hpp).
///
/// Semantics:
///  * `partitions == 1` (without a user assignment) bypasses the layer
///    entirely and reproduces the whole-graph `Sparsifier::run()` edge
///    list **bit for bit** — the k = 1 column of bench_partitioned is the
///    whole-graph engine.
///  * The stitched sparsifier always preserves connectivity: every engine
///    keeps a spanning tree of its component, and the union of block
///    spanning forests with a spanning forest of the cut graph connects
///    everything the input connects (kQuotient runs an explicit repair
///    scan instead). Disconnected inputs are supported — unlike the
///    whole-graph engine — and keep exactly the input's components.
///  * Determinism: the result is a pure function of (graph, assignment or
///    partitioner options, options-without-threads, seeds). Component
///    engines receive seeds derived as
///    `Rng(block.seed).split(block_id).split(component)`; the cut pass
///    derives from stream ids ≥ k so cut streams never collide with block
///    streams. `threads` changes wall time only.
///
/// σ² caveat: block σ² targets are local — the global condition number of
/// the stitched sparsifier is typically somewhat above the per-block
/// target (cut edges are filtered separately), which is the classic
/// quality/scale trade studied in bench_partitioned. Use
/// `estimate_quality` (or the bench) to measure it.

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/rescale.hpp"
#include "core/sparsifier.hpp"
#include "core/sparsifier_engine.hpp"
#include "partition/recursive_bisection.hpp"
#include "scale/quality.hpp"

namespace ssp {

/// What happens to the inter-block (cut) edges.
enum class CutPolicy {
  kKeepAll,   ///< keep every cut edge (safest, densest)
  kFilter,    ///< engine pass over the cut graph (default)
  kQuotient,  ///< one heaviest edge per adjacent block pair + repair
};

/// Stages reported through `ScaleObserver::on_scale_stage`.
enum class ScaleStage {
  kPartition,     ///< recursive bisection / assignment validation
  kExtract,       ///< block + cut subgraph extraction
  kBlockSparsify, ///< concurrent per-block engines
  kCutSparsify,   ///< cut policy application
  kStitch,        ///< global edge list assembly + connectivity repair
  kQuality,       ///< global (λ_min, λ_max, σ²) estimate / rescale
};

/// Number of ScaleStage values (for per-stage accumulation arrays).
inline constexpr int kNumScaleStages = 6;

struct PartitionedOptions {
  /// Target block count k (>= 1). 1 bypasses partitioning entirely.
  /// Ignored when a user assignment is supplied.
  Index partitions = 4;
  CutPolicy cut_policy = CutPolicy::kFilter;
  /// Engine options for the block passes; `block.seed` is the root of
  /// every derived stream and `block.threads` is ignored (block engines
  /// run single-threaded inside the outer fan-out).
  SparsifyOptions block;
  /// Engine options for the cut pass (kFilter); defaults to `block`.
  std::optional<SparsifyOptions> cut;
  /// Partitioner configuration; `partitioner.num_parts` is overridden by
  /// `partitions`.
  RecursiveBisectionOptions partitioner;
  /// Concurrent component engines (0 = `ssp::default_threads()`). Changes
  /// wall time only, never the result.
  int threads = 0;
  /// Estimate global (λ_min, λ_max, σ²) of the stitched sparsifier
  /// (scale/quality.hpp; needs a connected input).
  bool estimate_quality = false;
  /// Apply the scalar rescale stage to the stitched sparsifier (implies
  /// estimate_quality).
  bool rescale = false;

  /// Full validation; throws std::invalid_argument on the first violated
  /// constraint (including `block.validate()` / `cut->validate()`).
  void validate() const;

  PartitionedOptions& with_partitions(Index k);
  PartitionedOptions& with_cut_policy(CutPolicy policy);
  PartitionedOptions& with_block_options(SparsifyOptions opts);
  PartitionedOptions& with_cut_options(SparsifyOptions opts);
  PartitionedOptions& with_threads(int n);
  PartitionedOptions& with_estimate_quality(bool on);
  PartitionedOptions& with_rescale(bool on);
};

/// Sentinel `BlockStats::block` value for the cut pass.
inline constexpr Index kCutBlock = -1;

/// Telemetry of one block (or the cut pass) of a partitioned run.
struct BlockStats {
  Index block = 0;        ///< block id, or kCutBlock for the cut pass
  Vertex vertices = 0;    ///< vertices in the block subgraph
  EdgeId edges = 0;       ///< edges in the block subgraph
  EdgeId kept_edges = 0;  ///< edges selected into the global sparsifier
  Index components = 0;   ///< connected components processed
  Index tree_components = 0;  ///< components kept verbatim (already trees)
  double sigma2_estimate = 0.0;  ///< worst (max) component estimate
  bool reached_target = true;    ///< all engine components reached σ²
  double seconds = 0.0;          ///< wall time summed over components
  /// Engine stage seconds summed over components, indexed by StageKind.
  std::array<double, kNumStageKinds> stage_seconds{};
};

/// Telemetry hook for partitioned runs. Callbacks are invoked on the
/// driving thread (never concurrently), in deterministic order: blocks in
/// id order after the block stage completes, then the cut pass, with
/// `on_scale_stage` as each pipeline stage finishes.
class ScaleObserver {
 public:
  virtual ~ScaleObserver() = default;
  virtual void on_scale_stage(ScaleStage /*stage*/, double /*seconds*/) {}
  virtual void on_block(const BlockStats& /*stats*/) {}
};

struct PartitionedResult {
  /// Global edge ids of G forming the sparsifier: block selections in
  /// block order (each engine's backbone-first order preserved), then
  /// surviving cut edges, then connectivity-repair additions.
  std::vector<EdgeId> edges;
  /// Per-vertex block id actually used (from the partitioner or caller).
  std::vector<Vertex> assignment;
  Index blocks = 0;  ///< block count actually produced
  CutPolicy cut_policy = CutPolicy::kFilter;
  EdgeId cut_edges_total = 0;  ///< cut edges in the input partition
  EdgeId cut_edges_kept = 0;   ///< cut edges in the sparsifier
  std::vector<BlockStats> block_stats;     ///< one per block, in id order
  std::optional<BlockStats> cut_stats;     ///< kFilter engine pass only
  /// Wall seconds per ScaleStage (kQuality covers estimate + rescale).
  std::array<double, kNumScaleStages> stage_seconds{};
  double total_seconds = 0.0;
  /// Global quality of the stitched sparsifier (estimate_quality/rescale).
  std::optional<SparsifierQuality> quality;
  /// Scalar rescale outcome (opts.rescale): re-weighted sparsifier graph,
  /// scale factor and the two-sided σ² bounds before/after.
  std::optional<RescaleResult> rescaled;

  /// Materializes the (unscaled) sparsifier as a finalized graph on g's
  /// vertex set. For the re-weighted variant use `rescaled->sparsifier`.
  [[nodiscard]] Graph extract(const Graph& g) const {
    return g.edge_subgraph(edges);
  }
  [[nodiscard]] EdgeId num_edges() const {
    return static_cast<EdgeId>(edges.size());
  }
};

/// Partition-parallel sparsification driver. Bind to a finalized graph
/// (connected or not; must outlive the driver), configure via
/// `PartitionedOptions`, call `run()` once. Not copyable; API-level
/// single-threaded like the engine (internally fans out).
class PartitionedSparsifier {
 public:
  /// Partition chosen by recursive bisection (opts.partitions blocks).
  explicit PartitionedSparsifier(const Graph& g, PartitionedOptions opts = {});

  /// Caller-supplied per-vertex block assignment: `assignment[v]` in
  /// [0, k) with k = max id + 1; every id in [0, k) must be non-empty.
  /// Singleton blocks are legal (they contribute no block edges; their cut
  /// edges still connect them). `opts.partitions` is ignored.
  PartitionedSparsifier(const Graph& g, std::vector<Vertex> assignment,
                        PartitionedOptions opts = {});

  PartitionedSparsifier(const PartitionedSparsifier&) = delete;
  PartitionedSparsifier& operator=(const PartitionedSparsifier&) = delete;

  /// Attaches (or detaches, with nullptr) the telemetry observer; must
  /// outlive the driver or be detached first.
  void set_observer(ScaleObserver* observer) { observer_ = observer; }

  /// Runs the five-stage pipeline to completion. Idempotent: subsequent
  /// calls return the cached result.
  const PartitionedResult& run();

  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] const PartitionedResult& result() const { return result_; }
  [[nodiscard]] const PartitionedOptions& options() const { return opts_; }

  /// Moves the result out of a finished driver without copying the edge
  /// list; the driver is spent afterwards. Used by the one-shot wrapper.
  [[nodiscard]] PartitionedResult take_result() { return std::move(result_); }

 private:
  void run_whole_graph();  ///< partitions == 1 bit-for-bit fast path
  void run_partitioned();
  void quality_stage(const Graph& g);
  void notify_stage(ScaleStage stage, double seconds);

  const Graph* g_;
  PartitionedOptions opts_;
  std::optional<std::vector<Vertex>> user_assignment_;
  ScaleObserver* observer_ = nullptr;
  PartitionedResult result_;
  bool done_ = false;
};

/// One-shot convenience wrapper.
[[nodiscard]] PartitionedResult partitioned_sparsify(
    const Graph& g, const PartitionedOptions& opts = {});

}  // namespace ssp
