#include "scale/partitioned_sparsifier.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "graph/connectivity.hpp"
#include "graph/subgraph.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scale/component_tasks.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"
#include "util/union_find.hpp"

namespace ssp {

// The per-component engine machinery (ComponentTask, make_tasks,
// run_tasks, fold_stats, the tree-verbatim fast path, and the
// seed-derivation contract) is shared with the out-of-core driver —
// see scale/component_tasks.hpp.
using scale_detail::ComponentTask;
using scale_detail::fold_stats;
using scale_detail::make_tasks;
using scale_detail::run_tasks;

// ---- PartitionedOptions ----------------------------------------------------

void PartitionedOptions::validate() const {
  SSP_REQUIRE(partitions >= 1, "PartitionedOptions: partitions must be >= 1");
  SSP_REQUIRE(threads >= 0, "PartitionedOptions: threads must be >= 0");
  block.validate();
  if (cut.has_value()) cut->validate();
}

PartitionedOptions& PartitionedOptions::with_partitions(Index k) {
  SSP_REQUIRE(k >= 1, "PartitionedOptions: partitions must be >= 1");
  partitions = k;
  return *this;
}

PartitionedOptions& PartitionedOptions::with_cut_policy(CutPolicy policy) {
  cut_policy = policy;
  return *this;
}

PartitionedOptions& PartitionedOptions::with_block_options(
    SparsifyOptions opts) {
  opts.validate();
  block = std::move(opts);
  return *this;
}

PartitionedOptions& PartitionedOptions::with_cut_options(SparsifyOptions opts) {
  opts.validate();
  cut = std::move(opts);
  return *this;
}

PartitionedOptions& PartitionedOptions::with_threads(int n) {
  SSP_REQUIRE(n >= 0, "PartitionedOptions: threads must be >= 0");
  threads = n;
  return *this;
}

PartitionedOptions& PartitionedOptions::with_estimate_quality(bool on) {
  estimate_quality = on;
  return *this;
}

PartitionedOptions& PartitionedOptions::with_rescale(bool on) {
  rescale = on;
  return *this;
}

// ---- PartitionedSparsifier -------------------------------------------------

PartitionedSparsifier::PartitionedSparsifier(const Graph& g,
                                             PartitionedOptions opts)
    : g_(&g), opts_(std::move(opts)) {
  SSP_REQUIRE(g.finalized(),
              "PartitionedSparsifier: graph must be finalized");
  SSP_REQUIRE(g.num_vertices() >= 1,
              "PartitionedSparsifier: graph must be non-empty");
  opts_.validate();
}

PartitionedSparsifier::PartitionedSparsifier(const Graph& g,
                                             std::vector<Vertex> assignment,
                                             PartitionedOptions opts)
    : g_(&g), opts_(std::move(opts)) {
  SSP_REQUIRE(g.finalized(),
              "PartitionedSparsifier: graph must be finalized");
  SSP_REQUIRE(g.num_vertices() >= 1,
              "PartitionedSparsifier: graph must be non-empty");
  opts_.validate();
  SSP_REQUIRE(
      assignment.size() == static_cast<std::size_t>(g.num_vertices()),
      "PartitionedSparsifier: assignment size must equal num_vertices");
  Vertex max_id = -1;
  for (const Vertex b : assignment) {
    SSP_REQUIRE(b >= 0, "PartitionedSparsifier: negative block id");
    max_id = std::max(max_id, b);
  }
  const Index k = static_cast<Index>(max_id) + 1;
  std::vector<EdgeId> sizes(static_cast<std::size_t>(k), 0);
  for (const Vertex b : assignment) ++sizes[static_cast<std::size_t>(b)];
  for (Index b = 0; b < k; ++b) {
    SSP_REQUIRE(sizes[static_cast<std::size_t>(b)] > 0,
                "PartitionedSparsifier: empty block in assignment");
  }
  opts_.partitions = k;
  user_assignment_ = std::move(assignment);
}

namespace {

// Indexed by ScaleStage; keep in sync with the enum in the header.
constexpr const char* kScaleSpanName[kNumScaleStages] = {
    "scale.partition",    "scale.extract", "scale.block-sparsify",
    "scale.cut-sparsify", "scale.stitch",  "scale.quality"};
constexpr obs::MetricId kScaleStageNs[kNumScaleStages] = {
    "scale.stage.partition.ns",    "scale.stage.extract.ns",
    "scale.stage.block-sparsify.ns", "scale.stage.cut-sparsify.ns",
    "scale.stage.stitch.ns",       "scale.stage.quality.ns"};

}  // namespace

void PartitionedSparsifier::notify_stage(ScaleStage stage, double seconds) {
  result_.stage_seconds[static_cast<std::size_t>(stage)] = seconds;
  // Telemetry only: recording never alters partitioning or seeds.
  const auto idx = static_cast<int>(stage);
  obs::counter_add(kScaleStageNs[idx],
                   static_cast<std::uint64_t>(seconds * 1e9));
  obs::TraceScope span(kScaleSpanName[idx], seconds);
  if (observer_ != nullptr) observer_->on_scale_stage(stage, seconds);
}

const PartitionedResult& PartitionedSparsifier::run() {
  if (done_) return result_;
  const WallTimer total;
  result_.cut_policy = opts_.cut_policy;

  // Stage 1: partition (or validate the supplied assignment).
  {
    const WallTimer timer;
    if (user_assignment_.has_value()) {
      result_.assignment = *user_assignment_;
      result_.blocks = opts_.partitions;
    } else if (opts_.partitions == 1) {
      result_.assignment.assign(
          static_cast<std::size_t>(g_->num_vertices()), 0);
      result_.blocks = 1;
    } else {
      RecursiveBisectionOptions po = opts_.partitioner;
      po.num_parts = opts_.partitions;
      const RecursiveBisectionResult rb = recursive_bisection(*g_, po);
      result_.assignment = rb.assignment;
      result_.blocks = rb.parts;
    }
    notify_stage(ScaleStage::kPartition, timer.seconds());
  }

  // A single connected block is exactly the whole-graph engine — run it
  // verbatim so the k = 1 edge list matches Sparsifier::run() bit for bit.
  if (result_.blocks == 1 && is_connected(*g_)) {
    run_whole_graph();
  } else {
    run_partitioned();
  }

  quality_stage(*g_);
  result_.total_seconds = total.seconds();
  done_ = true;
  return result_;
}

void PartitionedSparsifier::run_whole_graph() {
  const WallTimer timer;
  BlockStats stats;
  stats.block = 0;
  stats.vertices = g_->num_vertices();
  stats.edges = g_->num_edges();
  stats.components = 1;
  // opts_.block verbatim: same seed, same streams, same edge list as a
  // standalone whole-graph engine run.
  Sparsifier engine(*g_, opts_.block);
  scale_detail::StageSecondsAccumulator acc(&stats.stage_seconds);
  engine.set_observer(&acc);
  engine.run();
  SparsifyResult r = engine.take_result();
  stats.kept_edges = static_cast<EdgeId>(r.edges.size());
  stats.sigma2_estimate = r.sigma2_estimate;
  stats.reached_target = r.reached_target;
  stats.seconds = timer.seconds();
  result_.edges = std::move(r.edges);
  result_.block_stats.push_back(stats);
  notify_stage(ScaleStage::kExtract, 0.0);
  notify_stage(ScaleStage::kBlockSparsify, stats.seconds);
  if (observer_ != nullptr) observer_->on_block(stats);
  notify_stage(ScaleStage::kCutSparsify, 0.0);
  notify_stage(ScaleStage::kStitch, 0.0);
}

void PartitionedSparsifier::run_partitioned() {
  const Index k = result_.blocks;
  const std::span<const Vertex> assignment(result_.assignment);

  // Stage 2: extract block and cut subgraphs.
  std::vector<Subgraph> blocks;
  Subgraph cut;
  {
    const WallTimer timer;
    blocks = partition_subgraphs(*g_, assignment, k);
    cut = cut_subgraph(*g_, assignment);
    notify_stage(ScaleStage::kExtract, timer.seconds());
  }
  result_.cut_edges_total = cut.graph.num_edges();

  // Stage 3: one engine per block component, fanned out over the pool.
  const Rng parent(opts_.block.seed);
  std::vector<ComponentTask> tasks;
  for (Index b = 0; b < k; ++b) {
    make_tasks(blocks[static_cast<std::size_t>(b)], b,
               static_cast<std::uint64_t>(b), parent, opts_.block, tasks);
  }
  const std::size_t num_block_tasks = tasks.size();
  {
    const WallTimer timer;
    run_tasks(tasks, 0, num_block_tasks, opts_.threads);
    notify_stage(ScaleStage::kBlockSparsify, timer.seconds());
  }
  for (Index b = 0; b < k; ++b) {
    result_.block_stats.push_back(
        fold_stats(b, blocks[static_cast<std::size_t>(b)], tasks));
    if (observer_ != nullptr) {
      observer_->on_block(result_.block_stats.back());
    }
  }

  // Stage 4: cut policy.
  std::vector<EdgeId> cut_kept;
  {
    const WallTimer timer;
    switch (opts_.cut_policy) {
      case CutPolicy::kKeepAll:
        cut_kept = cut.edge_to_global;
        break;
      case CutPolicy::kFilter: {
        const SparsifyOptions& cut_opts =
            opts_.cut.has_value() ? *opts_.cut : opts_.block;
        // Cut streams start at k so they never collide with block streams
        // (even when the cut pass shares the block seed).
        const Rng cut_parent(cut_opts.seed);
        make_tasks(cut, kCutBlock, static_cast<std::uint64_t>(k), cut_parent,
                   cut_opts, tasks);
        run_tasks(tasks, num_block_tasks, tasks.size(), opts_.threads);
        for (std::size_t t = num_block_tasks; t < tasks.size(); ++t) {
          cut_kept.insert(cut_kept.end(), tasks[t].selected.begin(),
                          tasks[t].selected.end());
        }
        result_.cut_stats = fold_stats(kCutBlock, cut, tasks);
        break;
      }
      case CutPolicy::kQuotient: {
        // One heaviest representative per adjacent block pair; ties break
        // toward the lowest edge id (edges scan in ascending id order).
        std::map<std::pair<Vertex, Vertex>, EdgeId> best;
        for (std::size_t i = 0; i < cut.edge_to_global.size(); ++i) {
          const EdgeId host = cut.edge_to_global[i];
          const Edge& e = g_->edge(host);
          const Vertex bu = assignment[static_cast<std::size_t>(e.u)];
          const Vertex bv = assignment[static_cast<std::size_t>(e.v)];
          const std::pair<Vertex, Vertex> key{std::min(bu, bv),
                                              std::max(bu, bv)};
          const auto [it, inserted] = best.try_emplace(key, host);
          if (!inserted && g_->edge(it->second).weight < e.weight) {
            it->second = host;
          }
        }
        for (const auto& [pair, host] : best) cut_kept.push_back(host);
        std::sort(cut_kept.begin(), cut_kept.end());
        break;
      }
    }
    notify_stage(ScaleStage::kCutSparsify, timer.seconds());
  }
  if (result_.cut_stats.has_value() && observer_ != nullptr) {
    observer_->on_block(*result_.cut_stats);
  }

  // Stage 5: stitch + connectivity repair.
  {
    const WallTimer timer;
    for (std::size_t t = 0; t < num_block_tasks; ++t) {
      result_.edges.insert(result_.edges.end(), tasks[t].selected.begin(),
                           tasks[t].selected.end());
    }
    result_.edges.insert(result_.edges.end(), cut_kept.begin(),
                         cut_kept.end());
    result_.cut_edges_kept = static_cast<EdgeId>(cut_kept.size());

    // Postcondition: the sparsifier connects exactly what G connects.
    // kKeepAll/kFilter satisfy it by construction (every engine keeps a
    // spanning tree of its component); kQuotient may drop a bridge, so
    // missing links are repaired greedily, heaviest cut edge first.
    UnionFind uf(static_cast<Index>(g_->num_vertices()));
    for (const EdgeId e : result_.edges) {
      const Edge& edge = g_->edge(e);
      uf.unite(static_cast<Index>(edge.u), static_cast<Index>(edge.v));
    }
    const Vertex g_components = connected_components(*g_).num_components;
    if (uf.num_sets() > static_cast<Index>(g_components)) {
      std::vector<EdgeId> candidates = cut.edge_to_global;
      std::sort(candidates.begin(), candidates.end(),
                [this](EdgeId a, EdgeId b) {
                  const double wa = g_->edge(a).weight;
                  const double wb = g_->edge(b).weight;
                  return wa != wb ? wa > wb : a < b;
                });
      for (const EdgeId e : candidates) {
        const Edge& edge = g_->edge(e);
        if (uf.unite(static_cast<Index>(edge.u),
                     static_cast<Index>(edge.v))) {
          result_.edges.push_back(e);
          ++result_.cut_edges_kept;
          if (uf.num_sets() == static_cast<Index>(g_components)) break;
        }
      }
    }
    SSP_ASSERT(uf.num_sets() == static_cast<Index>(g_components),
               "partitioned sparsifier lost connectivity");
    notify_stage(ScaleStage::kStitch, timer.seconds());
  }
}

void PartitionedSparsifier::quality_stage(const Graph& g) {
  if (!opts_.estimate_quality && !opts_.rescale) return;
  const WallTimer timer;
  // The pencil spectrum (and the max-weight spanning tree preconditioner
  // behind the λ_max estimate) needs one component; quality of a
  // disconnected input stays unset.
  if (is_connected(g)) {
    const Graph p = g.edge_subgraph(result_.edges);
    QualityOptions qopts;
    qopts.seed = opts_.block.seed;
    result_.quality = estimate_sparsifier_quality(g, p, qopts);
    if (opts_.rescale) {
      SparsifyResult synth;
      synth.edges = result_.edges;
      synth.lambda_min = result_.quality->lambda_min;
      synth.lambda_max = result_.quality->lambda_max;
      synth.sigma2_estimate = result_.quality->sigma2;
      result_.rescaled = rescale_sparsifier(g, synth);
    }
  }
  notify_stage(ScaleStage::kQuality, timer.seconds());
}

PartitionedResult partitioned_sparsify(const Graph& g,
                                       const PartitionedOptions& opts) {
  PartitionedSparsifier driver(g, opts);
  driver.run();
  return driver.take_result();
}

}  // namespace ssp
