#pragma once

/// \file lanczos.hpp
/// Lanczos eigensolvers:
///
/// * `pencil_extreme_eigenvalues` — Lanczos in the L_P inner product on the
///   operator L_P⁺ L_G (self-adjoint there), giving Ritz estimates of the
///   extreme generalized eigenvalues. This is the repo's "exact" reference
///   for the paper's Table 1 (standing in for MATLAB `eigs`).
/// * `smallest_laplacian_eigenpairs` — inverse Lanczos on L⁺ with the
///   constant vector deflated: the first k nontrivial eigenpairs used by
///   spectral drawing (Fig. 1), partitioning and the Table 4 eigensolver
///   timings.
///
/// Full reorthogonalization is used throughout (basis sizes stay small).

#include <vector>

#include "eigen/operators.hpp"
#include "util/rng.hpp"

namespace ssp {

struct PencilEigenEstimate {
  double lambda_max = 0.0;
  double lambda_min = 0.0;
  Index steps = 0;  ///< Lanczos steps actually performed
};

/// Extreme generalized eigenvalues of L_G u = λ L_P u restricted to 1⊥.
/// `solve_p` applies L_P⁺; `lp`/`lg` provide the products for inner
/// products. `steps` bounds the Krylov dimension.
[[nodiscard]] PencilEigenEstimate pencil_extreme_eigenvalues(
    const CsrMatrix& lg, const CsrMatrix& lp, const LinOp& solve_p,
    Index steps, Rng& rng);

/// λ_min of the pencil via the reversed pencil: the largest eigenvalue μ of
/// L_G⁺ L_P satisfies λ_min = 1/μ. Needs a solver for L_G. More accurate
/// than reading λ_min off the forward Lanczos (smallest pencil eigenvalues
/// are clustered, as the paper notes in §3.6.2).
[[nodiscard]] double pencil_lambda_min_reverse(const CsrMatrix& lp,
                                               const CsrMatrix& lg,
                                               const LinOp& solve_g,
                                               Index steps, Rng& rng);

struct EigenPairs {
  Vec values;                ///< ascending, nontrivial (λ > 0)
  std::vector<Vec> vectors;  ///< aligned with values
};

/// k smallest nontrivial Laplacian eigenpairs via inverse Lanczos: operator
/// L⁺ (through `solve`), constant nullspace deflated, `max_steps` Krylov
/// dimension (clamped to n−1; a practical choice is max(2k+20, 40)).
[[nodiscard]] EigenPairs smallest_laplacian_eigenpairs(Index n, Index k,
                                                       const LinOp& solve,
                                                       Index max_steps,
                                                       Rng& rng);

}  // namespace ssp
