#include "eigen/power_iteration.hpp"

#include <cmath>

#include "la/vector_ops.hpp"
#include "util/assert.hpp"

namespace ssp {

PowerResult power_iteration(const LinOp& apply, Index n, Rng& rng,
                            const PowerOptions& opts) {
  SSP_REQUIRE(n >= 1, "power_iteration: empty operator");
  SSP_REQUIRE(opts.max_iterations >= 1, "power_iteration: need >= 1 iteration");

  Vec h;
  if (opts.project_constants) {
    h = random_probe_vector(n, rng);
  } else {
    h = rng.rademacher_vector(n);
    normalize(h);
  }
  Vec y(static_cast<std::size_t>(n));

  PowerResult result;
  double prev = 0.0;
  for (Index it = 1; it <= opts.max_iterations; ++it) {
    apply(h, y);
    if (opts.project_constants) project_out_mean(y);
    const double lambda = dot(h, y);  // Rayleigh quotient (h normalized)
    result.iterations = it;
    result.eigenvalue = lambda;
    const double ynorm = norm2(y);
    if (ynorm == 0.0) break;  // h in the nullspace; eigenvalue 0
    scale(y, 1.0 / ynorm);
    h = y;
    if (it > 1 &&
        std::abs(lambda - prev) <= opts.rel_tolerance * std::abs(lambda)) {
      break;
    }
    prev = lambda;
  }
  result.vector = std::move(h);
  return result;
}

PowerResult generalized_power_iteration(const CsrMatrix& lg,
                                        const LinOp& solve_p, Rng& rng,
                                        const PowerOptions& opts) {
  const Index n = lg.rows();
  SSP_REQUIRE(lg.rows() == lg.cols(), "generalized power: L_G not square");
  SSP_REQUIRE(n >= 2, "generalized power: need >= 2 vertices");

  Vec h = random_probe_vector(n, rng);

  Vec gh(static_cast<std::size_t>(n));   // L_G h
  Vec hn(static_cast<std::size_t>(n));   // next iterate L_P^+ L_G h
  PowerResult result;
  double prev = 0.0;
  for (Index it = 1; it <= opts.max_iterations; ++it) {
    lg.multiply(h, gh);
    solve_p(gh, hn);
    project_out_mean(hn);
    // Rayleigh quotient of the pencil at hn:
    //   λ ≈ (hnᵀ L_G hn) / (hnᵀ L_P hn), and hnᵀ L_P hn = hnᵀ L_G h
    // because L_P hn = L_P L_P⁺ L_G h = (projected) L_G h.
    const double denom = dot(hn, gh);
    const double numer = lg.quadratic(hn);
    result.iterations = it;
    if (denom <= 0.0) break;  // numerical degeneracy; keep last estimate
    const double lambda = numer / denom;
    result.eigenvalue = lambda;
    const double nrm = norm2(hn);
    if (nrm == 0.0) break;
    h = hn;
    scale(h, 1.0 / nrm);
    if (it > 1 && std::abs(lambda - prev) <=
                      opts.rel_tolerance * std::abs(lambda)) {
      break;
    }
    prev = lambda;
  }
  result.vector = std::move(h);
  return result;
}

}  // namespace ssp
