#pragma once

/// \file power_iteration.hpp
/// Power iterations — both the plain symmetric variant and the
/// *generalized* variant on the pencil (L_G, L_P) that the paper's §3.6.1
/// uses to estimate λ_max of L_P⁺ L_G ("λ̃_max is estimated using less than
/// ten generalized power iterations", converging fast because the top
/// pencil eigenvalues are well separated [21]).

#include "eigen/operators.hpp"
#include "util/rng.hpp"

namespace ssp {

struct PowerOptions {
  Index max_iterations = 100;
  /// Stop when the Rayleigh quotient changes by less than this relative
  /// amount between iterations.
  double rel_tolerance = 1e-6;
  /// Keep iterates orthogonal to the all-ones vector (graph Laplacians).
  bool project_constants = true;
};

struct PowerResult {
  double eigenvalue = 0.0;
  Vec vector;
  Index iterations = 0;
};

/// Largest eigenvalue (by magnitude) of the symmetric operator `apply`.
[[nodiscard]] PowerResult power_iteration(const LinOp& apply, Index n,
                                          Rng& rng,
                                          const PowerOptions& opts = {});

/// Largest generalized eigenvalue λ_max of L_G u = λ L_P u via power
/// iterations on L_P⁺ L_G. `solve_p` applies L_P⁺. The Rayleigh quotient is
/// evaluated as (hᵀ L_G h)/(hᵀ L_P h) without an extra L_P product by using
/// hᵀ L_P h_{t} = hᵀ L_G h_{t-1} along the iteration.
[[nodiscard]] PowerResult generalized_power_iteration(
    const CsrMatrix& lg, const LinOp& solve_p, Rng& rng,
    const PowerOptions& opts = {});

}  // namespace ssp
