#pragma once

/// \file operators.hpp
/// Type-erased linear operators. The eigensolvers and the core
/// sparsification pipeline are written against `LinOp` so the same code
/// runs with an exact tree solver, a Cholesky factorization, PCG, or AMG as
/// the inner `L_P⁺` application.
///
/// Lifetime: the factory functions capture the referenced objects by
/// pointer; the caller must keep them alive while the operator is used.

#include <functional>
#include <span>

#include "la/csr_matrix.hpp"
#include "solver/amg.hpp"
#include "solver/cholesky.hpp"
#include "solver/pcg.hpp"
#include "solver/preconditioner.hpp"
#include "tree/tree_solver.hpp"

namespace ssp {

/// y := Op(x). Both spans have the operator's dimension.
using LinOp = std::function<void(std::span<const double>, std::span<double>)>;

/// Panel form: X := Op(B) applied to a row-major n×r multi-RHS panel
/// (arguments: b, x, n, r). Implementations must make each panel column
/// bit-identical to the corresponding single-RHS `LinOp` application —
/// callers use a PanelOp purely as a faster route through the same
/// arithmetic (e.g. the embedding's blocked probe loop).
using PanelOp = std::function<void(const double*, double*, Index, Index)>;

/// y = A x.
[[nodiscard]] LinOp make_csr_op(const CsrMatrix& a);

/// y = L_T⁺ x (exact tree solve, zero-mean output).
[[nodiscard]] LinOp make_tree_solver_op(const TreeSolver& solver);

/// Blocked multi-RHS form of `make_tree_solver_op` (one tree traversal for
/// all r columns; columns bit-identical to the single-RHS operator).
[[nodiscard]] PanelOp make_tree_solver_panel_op(const TreeSolver& solver);

/// y = A⁻¹ x via a (possibly Laplacian-grounded) Cholesky factorization.
[[nodiscard]] LinOp make_cholesky_op(const SparseCholesky& chol);

/// y ≈ A⁺ x via PCG with the given preconditioner. When `total_iterations`
/// is non-null it accumulates inner iteration counts across applications.
[[nodiscard]] LinOp make_pcg_op(const CsrMatrix& a, const Preconditioner& m,
                                PcgOptions opts,
                                Index* total_iterations = nullptr);

/// y ≈ A⁺ x via AMG V-cycles to the given tolerance.
[[nodiscard]] LinOp make_amg_op(const AmgHierarchy& amg, double rel_tol,
                                Index max_cycles);

}  // namespace ssp
