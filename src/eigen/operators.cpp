#include "eigen/operators.hpp"

#include "la/vector_ops.hpp"

namespace ssp {

LinOp make_csr_op(const CsrMatrix& a) {
  return [&a](std::span<const double> x, std::span<double> y) {
    a.multiply(x, y);
  };
}

LinOp make_tree_solver_op(const TreeSolver& solver) {
  return [&solver](std::span<const double> x, std::span<double> y) {
    solver.solve(x, y);
  };
}

PanelOp make_tree_solver_panel_op(const TreeSolver& solver) {
  return [&solver](const double* b, double* x, Index n, Index r) {
    solver.solve_multi({b, static_cast<std::size_t>(n * r)},
                       {x, static_cast<std::size_t>(n * r)}, r);
  };
}

LinOp make_cholesky_op(const SparseCholesky& chol) {
  return [&chol](std::span<const double> x, std::span<double> y) {
    chol.solve(x, y);
  };
}

LinOp make_pcg_op(const CsrMatrix& a, const Preconditioner& m,
                  PcgOptions opts, Index* total_iterations) {
  return [&a, &m, opts, total_iterations](std::span<const double> x,
                                          std::span<double> y) {
    fill(y, 0.0);
    const PcgResult res = pcg_solve(a, x, y, m, opts);
    if (total_iterations != nullptr) *total_iterations += res.iterations;
  };
}

LinOp make_amg_op(const AmgHierarchy& amg, double rel_tol, Index max_cycles) {
  return [&amg, rel_tol, max_cycles](std::span<const double> x,
                                     std::span<double> y) {
    fill(y, 0.0);
    amg.solve(x, y, rel_tol, max_cycles);
  };
}

}  // namespace ssp
