#include "eigen/lanczos.hpp"

#include <algorithm>
#include <cmath>

#include "la/tridiagonal_eigen.hpp"
#include "la/vector_ops.hpp"
#include "util/assert.hpp"

namespace ssp {

namespace {

/// Generic Lanczos in a (possibly non-Euclidean) inner product.
/// `op` applies the B-self-adjoint operator; `b_product(x, out)` computes
/// B x (pass the identity copy for the Euclidean case). Returns the
/// tridiagonal coefficients and, when `basis` is non-null, the B-orthonormal
/// Krylov basis vectors.
struct LanczosTridiag {
  Vec alpha;
  Vec beta;  // size alpha.size()-1
};

LanczosTridiag lanczos_b_inner(const LinOp& op, const LinOp& b_product,
                               Index n, Index steps, Rng& rng,
                               std::vector<Vec>* basis) {
  SSP_REQUIRE(n >= 2, "lanczos: need dimension >= 2");
  SSP_REQUIRE(steps >= 1, "lanczos: need >= 1 step");
  steps = std::min<Index>(steps, n - 1);

  Vec q = random_probe_vector(n, rng);
  Vec bq(static_cast<std::size_t>(n));
  b_product(q, bq);
  double qbq = dot(q, bq);
  SSP_ASSERT(qbq > 0.0, "lanczos: start vector B-degenerate");
  scale(q, 1.0 / std::sqrt(qbq));
  scale(bq, 1.0 / std::sqrt(qbq));

  std::vector<Vec> qs;   // B-orthonormal basis
  std::vector<Vec> bqs;  // B * basis vectors (for reorthogonalization)
  Vec w(static_cast<std::size_t>(n));
  LanczosTridiag t;

  for (Index j = 0; j < steps; ++j) {
    qs.push_back(q);
    bqs.push_back(bq);

    op(q, w);
    project_out_mean(w);
    // alpha_j = <Op q, q>_B = (Op q)^T B q.
    const double alpha = dot(w, bq);
    t.alpha.push_back(alpha);

    // w -= alpha q (+ beta q_prev handled by full reorthogonalization).
    // Full B-reorthogonalization (twice for stability).
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t i = 0; i < qs.size(); ++i) {
        const double c = dot(w, bqs[i]);
        axpy(-c, qs[i], w);
      }
    }
    Vec bw(static_cast<std::size_t>(n));
    b_product(w, bw);
    const double wbw = dot(w, bw);
    if (wbw <= 1e-28) {  // happy breakdown: Krylov space exhausted
      break;
    }
    const double beta = std::sqrt(wbw);
    if (j + 1 < steps) t.beta.push_back(beta);
    q = w;
    scale(q, 1.0 / beta);
    bq = bw;
    scale(bq, 1.0 / beta);
  }
  // Trim beta to alpha.size()-1 (breakdown cases).
  if (!t.alpha.empty() && t.beta.size() >= t.alpha.size()) {
    t.beta.resize(t.alpha.size() - 1);
  }
  if (basis != nullptr) *basis = std::move(qs);
  return t;
}

}  // namespace

PencilEigenEstimate pencil_extreme_eigenvalues(const CsrMatrix& lg,
                                               const CsrMatrix& lp,
                                               const LinOp& solve_p,
                                               Index steps, Rng& rng) {
  SSP_REQUIRE(lg.rows() == lg.cols() && lp.rows() == lp.cols() &&
                  lg.rows() == lp.rows(),
              "pencil lanczos: dimension mismatch");
  const Index n = lg.rows();
  Vec tmp;
  const LinOp op = [&](std::span<const double> x, std::span<double> y) {
    // y = L_P^+ (L_G x)
    Vec gx = lg.multiply(x);
    project_out_mean(gx);
    solve_p(gx, y);
    project_out_mean(y);
  };
  const LinOp b_product = make_csr_op(lp);
  const LanczosTridiag t = lanczos_b_inner(op, b_product, n, steps, rng,
                                           nullptr);
  PencilEigenEstimate est;
  est.steps = static_cast<Index>(t.alpha.size());
  if (t.alpha.empty()) return est;
  const Vec ritz = tridiagonal_eigenvalues(t.alpha, t.beta);
  est.lambda_min = ritz.front();
  est.lambda_max = ritz.back();
  return est;
}

double pencil_lambda_min_reverse(const CsrMatrix& lp, const CsrMatrix& lg,
                                 const LinOp& solve_g, Index steps, Rng& rng) {
  const LinOp op = [&](std::span<const double> x, std::span<double> y) {
    Vec px = lp.multiply(x);
    project_out_mean(px);
    solve_g(px, y);
    project_out_mean(y);
  };
  const LinOp b_product = make_csr_op(lg);
  const LanczosTridiag t =
      lanczos_b_inner(op, b_product, lg.rows(), steps, rng, nullptr);
  SSP_ASSERT(!t.alpha.empty(), "reverse pencil lanczos: no steps taken");
  const Vec ritz = tridiagonal_eigenvalues(t.alpha, t.beta);
  const double mu_max = ritz.back();
  SSP_ASSERT(mu_max > 0.0, "reverse pencil lanczos: nonpositive Ritz value");
  return 1.0 / mu_max;
}

EigenPairs smallest_laplacian_eigenpairs(Index n, Index k, const LinOp& solve,
                                         Index max_steps, Rng& rng) {
  SSP_REQUIRE(n >= 2, "eigenpairs: need >= 2 vertices");
  SSP_REQUIRE(k >= 1 && k < n, "eigenpairs: k must be in [1, n)");
  max_steps = std::min<Index>(std::max<Index>(max_steps, 2 * k + 8), n - 1);

  const LinOp op = [&](std::span<const double> x, std::span<double> y) {
    solve(x, y);
    project_out_mean(y);
  };
  // Euclidean inner product: B = I.
  const LinOp identity = [](std::span<const double> x, std::span<double> y) {
    std::copy(x.begin(), x.end(), y.begin());
  };

  std::vector<Vec> basis;
  const LanczosTridiag t =
      lanczos_b_inner(op, identity, n, max_steps, rng, &basis);
  SSP_ASSERT(!t.alpha.empty(), "eigenpairs: no Lanczos steps taken");
  const TridiagonalEigen te = tridiagonal_eigen(t.alpha, t.beta);
  const Index m = static_cast<Index>(te.eigenvalues.size());

  // Ritz values of L^+ descending = smallest λ of L ascending.
  EigenPairs out;
  const Index take = std::min<Index>(k, m);
  for (Index idx = 0; idx < take; ++idx) {
    const Index col = m - 1 - idx;  // largest μ first
    const double mu = te.eigenvalues[static_cast<std::size_t>(col)];
    if (mu <= 0.0) break;  // spurious/nullspace Ritz values
    out.values.push_back(1.0 / mu);
    Vec v(static_cast<std::size_t>(n), 0.0);
    for (Index j = 0; j < m; ++j) {
      axpy(te.vectors(j, col), basis[static_cast<std::size_t>(j)], v);
    }
    project_out_mean(v);
    normalize(v);
    out.vectors.push_back(std::move(v));
  }
  return out;
}

}  // namespace ssp
