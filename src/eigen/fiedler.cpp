#include "eigen/fiedler.hpp"

#include <cmath>

#include "la/vector_ops.hpp"
#include "util/assert.hpp"

namespace ssp {

FiedlerResult fiedler_vector(const CsrMatrix& l, const LinOp& solve, Rng& rng,
                             const FiedlerOptions& opts) {
  SSP_REQUIRE(l.rows() == l.cols(), "fiedler: matrix not square");
  const Index n = l.rows();
  SSP_REQUIRE(n >= 2, "fiedler: need >= 2 vertices");

  Vec x = random_probe_vector(n, rng);
  Vec y(static_cast<std::size_t>(n));

  FiedlerResult result;
  double prev = 0.0;
  for (Index it = 1; it <= opts.max_iterations; ++it) {
    solve(x, y);  // y ≈ L⁺ x — amplifies the smallest nonzero eigenspace
    project_out_mean(y);
    const double ynorm = norm2(y);
    SSP_ASSERT(ynorm > 0.0, "fiedler: inverse iteration collapsed to zero");
    scale(y, 1.0 / ynorm);
    x = y;
    const double lambda = l.quadratic(x);  // Rayleigh quotient (unit x)
    result.iterations = it;
    result.eigenvalue = lambda;
    if (it > 1 &&
        std::abs(lambda - prev) <= opts.rel_tolerance * std::abs(lambda)) {
      break;
    }
    prev = lambda;
  }
  result.vector = std::move(x);
  return result;
}

}  // namespace ssp
