#pragma once

/// \file fiedler.hpp
/// Approximate Fiedler vector (eigenvector of the smallest nonzero
/// Laplacian eigenvalue) via inverse power iterations — the computation at
/// the heart of the paper's Table 3 spectral-partitioning experiment: "by
/// applying only a few inverse power iterations, the approximate Fiedler
/// vector … can be obtained" [20], where each iteration is one Laplacian
/// solve by either a direct factorization or a sparsifier-preconditioned
/// PCG.

#include "eigen/operators.hpp"
#include "util/rng.hpp"

namespace ssp {

struct FiedlerOptions {
  Index max_iterations = 50;
  /// Stop when the Rayleigh-quotient eigenvalue estimate stabilizes to this
  /// relative tolerance.
  double rel_tolerance = 1e-8;
};

struct FiedlerResult {
  Vec vector;               ///< unit-norm, zero-mean
  double eigenvalue = 0.0;  ///< Rayleigh quotient estimate of λ₂
  Index iterations = 0;     ///< inverse power iterations used
};

/// Computes the Fiedler vector of the Laplacian `l` using `solve` to apply
/// L⁺ (tree solver, Cholesky, PCG, or AMG).
[[nodiscard]] FiedlerResult fiedler_vector(const CsrMatrix& l,
                                           const LinOp& solve, Rng& rng,
                                           const FiedlerOptions& opts = {});

}  // namespace ssp
